"""Page-access pattern characterization (Figure 3, Table 1).

Section 3.1 of the paper instruments applications to gather the page
number and timestamp of every memory access, tracks recently accessed
pages in a table, and analyzes the trace offline with curve fitting to
discover page-level patterns — finding, e.g., that ``bwaves`` and
``lbm`` are evidently sequential while ``deepsjeng`` is near random.

This module reimplements that offline analysis:

* :func:`characterize_trace` measures the *sequential-run structure*
  of a page series: the distribution of monotone ±1 run lengths, the
  fraction of accesses covered by runs, and a linear-fit quality
  (R²) of page-vs-index over sliding windows — the "curve fitting"
  signal that flags straight-line (sequential) segments;
* :func:`classify_benchmark` reproduces the Table 1 classification
  from a workload profile: *small working set* when the footprint
  fits the EPC, otherwise *regular* or *irregular* by the measured
  sequential coverage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = [
    "PatternKind",
    "PatternSummary",
    "characterize_trace",
    "characterize_workload",
    "classify_benchmark",
]


class PatternKind(enum.Enum):
    """Table 1 categories."""

    SMALL_WORKING_SET = "small working set"
    LARGE_REGULAR = "large working set, regular access"
    LARGE_IRREGULAR = "large working set, irregular access"


@dataclass(frozen=True)
class PatternSummary:
    """Offline characterization of one page-access series."""

    accesses: int
    distinct_pages: int
    #: Fraction of accesses that extend one of a table of recently
    #: tracked streams — the paper's "table to track recently accessed
    #: pages" signal, robust to interleaved multi-array sweeps whose
    #: raw trace has no monotone runs at all.
    stream_coverage: float
    #: Fraction of accesses inside raw monotone runs of length >= 4.
    sequential_coverage: float
    #: Mean length of monotone runs (>= 1 by construction).
    mean_run_length: float
    #: Longest monotone run observed.
    max_run_length: int
    #: Mean R² of page-vs-index straight-line fits over windows; high
    #: values mean the scatter plot of Figure 3 looks like lines.
    linearity: float

    @property
    def looks_sequential(self) -> bool:
        """Heuristic: the trace is stream-dominated.

        0.6 separates stream-dominated codes (lbm/bwaves ≥ 0.9) from
        half-and-half mixes like xz (~0.55), which Table 1 files under
        irregular.
        """
        return self.stream_coverage >= 0.6


def _runs(pages: Sequence[int]) -> List[int]:
    """Lengths of maximal monotone ±1 runs in the series."""
    runs: List[int] = []
    if not pages:
        return runs
    length = 1
    direction = 0
    for prev, cur in zip(pages, pages[1:]):
        step = cur - prev
        if step in (1, -1) and (direction == 0 or step == direction):
            length += 1
            direction = step
        else:
            runs.append(length)
            length = 1
            direction = 0
    runs.append(length)
    return runs


def _window_linearity(pages: Sequence[int], window: int) -> float:
    """Mean R² of least-squares lines over non-overlapping windows.

    Pure-Python least squares: windows are small (default 64), and the
    analysis runs on downsampled traces, so this stays fast without
    numpy (which is an optional dependency).
    """
    n = len(pages)
    if n < window:
        window = max(2, n)
    scores: List[float] = []
    for start in range(0, n - window + 1, window):
        ys = pages[start : start + window]
        m = len(ys)
        xs = range(m)
        mean_x = (m - 1) / 2
        mean_y = sum(ys) / m
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        syy = sum((y - mean_y) ** 2 for y in ys)
        if syy == 0:
            # Constant window: a flat line fits exactly (a re-touched
            # page is "predictable", so count it as linear).
            scores.append(1.0)
            continue
        scores.append((sxy * sxy) / (sxx * syy) if sxx else 0.0)
    return sum(scores) / len(scores) if scores else 0.0


def _stream_coverage(
    pages: Sequence[int], *, tails: int = 32, match_window: int = 8
) -> float:
    """Fraction of accesses extending one of ``tails`` tracked streams.

    The same LRU stream-tail machinery DFP uses, applied offline: an
    access within ``match_window`` pages ahead of (or exactly at) a
    tracked tail extends that stream and counts as sequential; any
    other access recycles the LRU tail.  This recovers the sequential
    structure of interleaved multi-array sweeps that raw monotone-run
    analysis misses entirely.
    """
    tail_list: List[int] = []
    covered = 0
    for page in pages:
        matched = None
        for index, tail in enumerate(tail_list):
            if 0 < page - tail <= match_window:
                matched = index
                break
        if matched is not None:
            covered += 1
            tail_list.insert(0, tail_list.pop(matched))
            tail_list[0] = page
        else:
            if len(tail_list) >= tails:
                tail_list.pop()
            tail_list.insert(0, page)
    return covered / len(pages)


def characterize_trace(
    pages: Sequence[int],
    *,
    min_run: int = 4,
    window: int = 64,
) -> PatternSummary:
    """Characterize one page series (the Figure 3 offline analysis)."""
    if not pages:
        raise WorkloadError("cannot characterize an empty trace")
    runs = _runs(pages)
    covered = sum(r for r in runs if r >= min_run)
    total = len(pages)
    return PatternSummary(
        accesses=total,
        distinct_pages=len(set(pages)),
        stream_coverage=_stream_coverage(pages),
        sequential_coverage=covered / total,
        mean_run_length=total / len(runs),
        max_run_length=max(runs),
        linearity=_window_linearity(pages, window),
    )


def characterize_workload(
    workload: Workload,
    *,
    seed: int = 0,
    input_set: str = "train",
    max_accesses: int = 60_000,
) -> PatternSummary:
    """Characterize a workload from a (truncated) profiling trace."""
    pages: List[int] = []
    for _instr, page, _cycles in workload.trace(seed=seed, input_set=input_set):
        pages.append(page)
        if len(pages) >= max_accesses:
            break
    return characterize_trace(pages)


def classify_benchmark(
    workload: Workload,
    config: SimConfig,
    *,
    seed: int = 0,
) -> Tuple[PatternKind, PatternSummary]:
    """Reproduce the Table 1 classification for one workload."""
    summary = characterize_workload(workload, seed=seed)
    if workload.footprint_pages <= config.epc_pages:
        return PatternKind.SMALL_WORKING_SET, summary
    if summary.looks_sequential:
        return PatternKind.LARGE_REGULAR, summary
    return PatternKind.LARGE_IRREGULAR, summary
