"""Rendering of fleet-scenario results (``repro fleet`` / ``repro report``).

Two renderers over the deterministic ``repro.fleet-manifest/1`` block
(:meth:`repro.sim.fleet.FleetResult.fleet_block`):

* :func:`render_fleet_table` — one scenario: the summary header plus a
  per-tenant QoS table (p50/p99 demand-fault latency, channel wait,
  request queueing lag);
* :func:`render_policy_comparison` — the same scenario run under
  several EPC frame policies, one row per (tenant, policy) QoS pair —
  the table the fleet experiment exists to produce.

Both operate on plain dicts so ``repro report`` can render a fleet
block straight out of a saved manifest without re-simulating.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.analysis.report import format_table
from repro.errors import ObsError

__all__ = ["render_fleet_table", "render_policy_comparison"]


def _cycles(value: object) -> str:
    if value is None:
        return "-"
    return f"{int(value):,}"


def _tenant_rows(block: Mapping[str, object]) -> List[List[str]]:
    rows: List[List[str]] = []
    for tenant in block["tenants"]:
        if not tenant.get("admitted"):
            rows.append(
                [
                    str(tenant["name"]),
                    str(tenant["scheme"]),
                    "never admitted",
                    "-", "-", "-", "-", "-",
                ]
            )
            continue
        requests = tenant.get("requests")
        lag = (
            f"{requests['lag_p99']:,.0f}" if requests is not None else "-"
        )
        state = "done" if tenant.get("completed") else "truncated"
        rows.append(
            [
                str(tenant["name"]),
                str(tenant["scheme"]),
                state,
                _cycles(tenant.get("faults")),
                f"{tenant['fault_latency_p50']:,.0f}",
                f"{tenant['fault_latency_p99']:,.0f}",
                f"{tenant['channel_wait_p99']:,.0f}",
                lag,
            ]
        )
    return rows


def render_fleet_table(block: Mapping[str, object]) -> str:
    """Per-tenant QoS table for one fleet scenario run."""
    _check_block(block)
    scenario = block["scenario"]
    summary = block["summary"]
    title = (
        f"fleet scenario {scenario['name']!r} "
        f"[policy={scenario['policy']}, seed={scenario['seed']}, "
        f"epc={scenario['epc_pages']:,} pages]\n"
        f"{summary['admitted']}/{scenario['tenants']} admitted, "
        f"{summary['completed']} completed, "
        f"{summary['truncated']} truncated, "
        f"{summary['never_admitted']} never admitted; "
        f"{summary['faults']:,} faults, "
        f"{summary['requests_served']:,} requests, "
        f"{summary['rebalances']:,} rebalances, "
        f"end at {summary['end_cycles']:,} cycles"
    )
    return format_table(
        [
            "tenant", "scheme", "state", "faults",
            "fault p50", "fault p99", "wait p99", "req lag p99",
        ],
        _tenant_rows(block),
        title=title,
    )


def render_policy_comparison(blocks: Sequence[Mapping[str, object]]) -> str:
    """Per-tenant QoS comparison across EPC frame policies.

    ``blocks`` are fleet blocks of the *same* scenario and seed run
    under different policies (the ``repro fleet --policies`` path).
    """
    if not blocks:
        raise ObsError("policy comparison needs at least one fleet block")
    for block in blocks:
        _check_block(block)
    first = blocks[0]["scenario"]
    for block in blocks[1:]:
        scenario = block["scenario"]
        if (scenario["name"], scenario["seed"]) != (
            first["name"],
            first["seed"],
        ):
            raise ObsError(
                "policy comparison mixes scenarios: "
                f"{first['name']!r}/seed {first['seed']} vs "
                f"{scenario['name']!r}/seed {scenario['seed']}"
            )
    rows: List[List[str]] = []
    count = len(blocks[0]["tenants"])
    for index in range(count):
        for block in blocks:
            tenant = block["tenants"][index]
            policy = block["scenario"]["policy"]
            if not tenant.get("admitted"):
                rows.append(
                    [str(tenant["name"]), policy, "never admitted", "-", "-", "-"]
                )
                continue
            rows.append(
                [
                    str(tenant["name"]),
                    policy,
                    "done" if tenant.get("completed") else "truncated",
                    _cycles(tenant.get("faults")),
                    f"{tenant['fault_latency_p50']:,.0f}",
                    f"{tenant['fault_latency_p99']:,.0f}",
                ]
            )
    title = (
        f"fleet scenario {first['name']!r} (seed {first['seed']}): "
        f"per-tenant QoS under {len(blocks)} EPC policies"
    )
    return format_table(
        ["tenant", "policy", "state", "faults", "fault p50", "fault p99"],
        rows,
        title=title,
    )


def _check_block(block: Mapping[str, object]) -> None:
    schema = block.get("schema")
    if schema != "repro.fleet-manifest/1":
        raise ObsError(
            f"not a fleet block: schema {schema!r} "
            "(expected repro.fleet-manifest/1)"
        )
