"""Rendering of fleet-scenario results (``repro fleet`` / ``repro report``).

Renderers over the deterministic ``repro.fleet-manifest/1`` block
(:meth:`repro.sim.fleet.FleetResult.fleet_block`):

* :func:`render_fleet_table` — one scenario: the summary header plus a
  per-tenant QoS table (p50/p99 demand-fault latency, channel wait,
  request queueing lag);
* :func:`render_policy_comparison` — the same scenario run under
  several EPC frame policies, one row per (tenant, policy) QoS pair —
  the table the fleet experiment exists to produce.

And over the windowed ``repro.fleet-timeseries/1`` block
(:mod:`repro.obs.fleet_telemetry`):

* :func:`render_timeseries` — ASCII sparkline time-series of the
  fleet-wide signals (faults, preloads, occupancy, queue depth,
  channel utilization), one glyph per window;
* :func:`render_slo_report` — the breach table of a
  ``repro.fleet-slo/1`` evaluation (tenant, cycle interval, violated
  objectives, worst observed values);
* :func:`render_thrash_table` — merged thrash intervals from
  :func:`repro.obs.fleet_telemetry.detect_thrash`.

All operate on plain dicts so ``repro report`` can render the blocks
straight out of a saved manifest without re-simulating.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.analysis.report import format_table
from repro.errors import ObsError

__all__ = [
    "render_fleet_table",
    "render_policy_comparison",
    "render_timeseries",
    "render_slo_report",
    "render_thrash_table",
    "sparkline",
]


def _cycles(value: object) -> str:
    if value is None:
        return "-"
    return f"{int(value):,}"


def _tenant_rows(block: Mapping[str, object]) -> List[List[str]]:
    rows: List[List[str]] = []
    for tenant in block["tenants"]:
        if not tenant.get("admitted"):
            rows.append(
                [
                    str(tenant["name"]),
                    str(tenant["scheme"]),
                    "never admitted",
                    "-", "-", "-", "-", "-",
                ]
            )
            continue
        requests = tenant.get("requests")
        lag = (
            f"{requests['lag_p99']:,.0f}" if requests is not None else "-"
        )
        state = "done" if tenant.get("completed") else "truncated"
        rows.append(
            [
                str(tenant["name"]),
                str(tenant["scheme"]),
                state,
                _cycles(tenant.get("faults")),
                f"{tenant['fault_latency_p50']:,.0f}",
                f"{tenant['fault_latency_p99']:,.0f}",
                f"{tenant['channel_wait_p99']:,.0f}",
                lag,
            ]
        )
    return rows


def render_fleet_table(block: Mapping[str, object]) -> str:
    """Per-tenant QoS table for one fleet scenario run."""
    _check_block(block)
    scenario = block["scenario"]
    summary = block["summary"]
    title = (
        f"fleet scenario {scenario['name']!r} "
        f"[policy={scenario['policy']}, seed={scenario['seed']}, "
        f"epc={scenario['epc_pages']:,} pages]\n"
        f"{summary['admitted']}/{scenario['tenants']} admitted, "
        f"{summary['completed']} completed, "
        f"{summary['truncated']} truncated, "
        f"{summary['never_admitted']} never admitted; "
        f"{summary['faults']:,} faults, "
        f"{summary['requests_served']:,} requests, "
        f"{summary['rebalances']:,} rebalances, "
        f"end at {summary['end_cycles']:,} cycles"
    )
    return format_table(
        [
            "tenant", "scheme", "state", "faults",
            "fault p50", "fault p99", "wait p99", "req lag p99",
        ],
        _tenant_rows(block),
        title=title,
    )


def render_policy_comparison(blocks: Sequence[Mapping[str, object]]) -> str:
    """Per-tenant QoS comparison across EPC frame policies.

    ``blocks`` are fleet blocks of the *same* scenario and seed run
    under different policies (the ``repro fleet --policies`` path).
    """
    if not blocks:
        raise ObsError("policy comparison needs at least one fleet block")
    for block in blocks:
        _check_block(block)
    first = blocks[0]["scenario"]
    for block in blocks[1:]:
        scenario = block["scenario"]
        if (scenario["name"], scenario["seed"]) != (
            first["name"],
            first["seed"],
        ):
            raise ObsError(
                "policy comparison mixes scenarios: "
                f"{first['name']!r}/seed {first['seed']} vs "
                f"{scenario['name']!r}/seed {scenario['seed']}"
            )
    rows: List[List[str]] = []
    count = len(blocks[0]["tenants"])
    for index in range(count):
        for block in blocks:
            tenant = block["tenants"][index]
            policy = block["scenario"]["policy"]
            if not tenant.get("admitted"):
                rows.append(
                    [str(tenant["name"]), policy, "never admitted", "-", "-", "-"]
                )
                continue
            rows.append(
                [
                    str(tenant["name"]),
                    policy,
                    "done" if tenant.get("completed") else "truncated",
                    _cycles(tenant.get("faults")),
                    f"{tenant['fault_latency_p50']:,.0f}",
                    f"{tenant['fault_latency_p99']:,.0f}",
                ]
            )
    truncated = ", ".join(
        f"{block['scenario']['policy']}={block['summary']['truncated']}"
        for block in blocks
    )
    title = (
        f"fleet scenario {first['name']!r} (seed {first['seed']}): "
        f"per-tenant QoS under {len(blocks)} EPC policies\n"
        f"truncated tenants: {truncated}"
    )
    return format_table(
        ["tenant", "policy", "state", "faults", "fault p50", "fault p99"],
        rows,
        title=title,
    )


def _check_block(block: Mapping[str, object]) -> None:
    schema = block.get("schema")
    if schema != "repro.fleet-manifest/1":
        raise ObsError(
            f"not a fleet block: schema {schema!r} "
            "(expected repro.fleet-manifest/1)"
        )


#: Sparkline glyphs, lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int = 64) -> str:
    """Render ``values`` as one sparkline row, downsampled to ``width``.

    Downsampling takes the max of each chunk — spikes are the signal
    here, and averaging a thrash window away would defeat the point.
    Levels are scaled to the series' own min..max; a flat series
    renders as all-minimum glyphs.
    """
    if not values:
        return ""
    if width < 1:
        raise ObsError(f"sparkline width must be >= 1, got {width}")
    series = [float(v) for v in values]
    if len(series) > width:
        chunks: List[float] = []
        for k in range(width):
            lo = k * len(series) // width
            hi = max(lo + 1, (k + 1) * len(series) // width)
            chunks.append(max(series[lo:hi]))
        series = chunks
    low = min(series)
    span = max(series) - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(series)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - low) / span * top)] for v in series
    )


#: Fleet-wide series rendered by :func:`render_timeseries`, in order:
#: (series key, display label, render as float).
_TIMESERIES_ROWS = (
    ("faults", "faults/window", False),
    ("preloads_completed", "preloads/window", False),
    ("epc_resident", "EPC resident", False),
    ("queue_depth", "queue depth", False),
    ("active_tenants", "active tenants", False),
    ("channel_utilization", "channel util", True),
    ("fault_wait_p99", "fault-wait p99", False),
)


def _check_timeseries(block: Mapping[str, object]) -> None:
    schema = block.get("schema")
    if schema != "repro.fleet-timeseries/1":
        raise ObsError(
            f"not a fleet timeseries block: schema {schema!r} "
            "(expected repro.fleet-timeseries/1)"
        )


def render_timeseries(block: Mapping[str, object], *, width: int = 64) -> str:
    """ASCII sparkline view of a ``repro.fleet-timeseries/1`` block.

    One row per fleet-wide signal: label, sparkline (one glyph per
    window, max-downsampled past ``width``), then the series'
    min/max/last so the glyphs have a scale.
    """
    _check_timeseries(block)
    ends = block["window_end"]
    fleet = block["fleet"]
    lines = [
        f"fleet timeseries: {len(ends)} windows × "
        f"{int(block['window_cycles']):,} cycles, "
        f"end at {int(block['end_cycles']):,} cycles"
        + (
            f" (coarsened ×{2 ** int(block['coarsen_passes'])})"
            if block.get("coarsen_passes")
            else ""
        )
    ]
    label_width = max(len(label) for _, label, _ in _TIMESERIES_ROWS)
    for key, label, as_float in _TIMESERIES_ROWS:
        series = fleet[key]
        if as_float:
            lo, hi, last = min(series), max(series), series[-1]
            scale = f"min {lo:.2f}  max {hi:.2f}  last {last:.2f}"
        else:
            lo, hi, last = min(series), max(series), series[-1]
            scale = f"min {int(lo):,}  max {int(hi):,}  last {int(last):,}"
        lines.append(
            f"{label:<{label_width}}  {sparkline(series, width=width)}  {scale}"
        )
    rebalances = block.get("rebalances") or []
    if rebalances:
        lines.append(f"rebalance decisions: {len(rebalances)}")
    return "\n".join(lines)


def render_slo_report(slo_doc: Mapping[str, object]) -> str:
    """Breach table of one ``repro.fleet-slo/1`` evaluation."""
    schema = slo_doc.get("schema")
    if schema != "repro.fleet-slo/1":
        raise ObsError(
            f"not an SLO document: schema {schema!r} "
            "(expected repro.fleet-slo/1)"
        )
    spec = slo_doc["spec"]
    objectives = ", ".join(
        f"{key}={value}" for key, value in sorted(spec.items())
        if value is not None
    )
    breaches = slo_doc["breaches"]
    header = (
        f"SLO [{objectives}] over {slo_doc['windows_evaluated']} windows, "
        f"{slo_doc['tenants']} tenants: {len(breaches)} breach interval(s)"
    )
    if not breaches:
        return header + " — all objectives met"
    rows = []
    for breach in breaches:
        worst = breach["worst"]
        rows.append(
            [
                str(breach["tenant"]),
                f"[{int(breach['start_cycle']):,}, "
                f"{int(breach['end_cycle']):,})",
                str(breach["windows"]),
                ", ".join(breach["violated"]),
                ", ".join(
                    f"{key}={worst[key]:,}" for key in sorted(worst)
                ),
            ]
        )
    return format_table(
        ["tenant", "cycles", "windows", "violated", "worst"],
        rows,
        title=header,
    )


def render_thrash_table(
    intervals: Sequence[Mapping[str, object]],
    *,
    factor: float = 2.0,
) -> str:
    """Table of merged thrash intervals from ``detect_thrash``."""
    header = (
        f"thrash windows (fault rate > {factor:g}× tenant mean): "
        f"{len(intervals)} interval(s)"
    )
    if not intervals:
        return header
    rows = [
        [
            str(iv["tenant"]),
            f"[{int(iv['start_cycle']):,}, {int(iv['end_cycle']):,})",
            str(iv["windows"]),
            f"{int(iv['faults']):,}",
            f"{iv['peak_rate_vs_mean']:.2f}×",
        ]
        for iv in intervals
    ]
    return format_table(
        ["tenant", "cycles", "windows", "faults", "peak vs mean"],
        rows,
        title=header,
    )
