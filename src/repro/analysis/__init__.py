"""Analysis helpers: access-pattern characterization and reporting.

* :mod:`repro.analysis.patterns` — page-access pattern detection and
  the curve-fitting characterization used for Figure 3 and Table 1.
* :mod:`repro.analysis.metrics` — aggregate metrics over run results.
* :mod:`repro.analysis.report` — plain-text tables and ASCII charts in
  the shape of the paper's figures.
"""

from repro.analysis.patterns import (
    PatternKind,
    PatternSummary,
    characterize_trace,
    characterize_workload,
    classify_benchmark,
)
from repro.analysis.metrics import (
    geomean_normalized,
    mean_improvement,
    summarize_results,
)
from repro.analysis.report import ascii_bar_chart, format_table, render_series

__all__ = [
    "PatternKind",
    "PatternSummary",
    "characterize_trace",
    "characterize_workload",
    "classify_benchmark",
    "geomean_normalized",
    "mean_improvement",
    "summarize_results",
    "ascii_bar_chart",
    "format_table",
    "render_series",
]
