"""Analysis helpers: access-pattern characterization and reporting.

* :mod:`repro.analysis.patterns` — page-access pattern detection and
  the curve-fitting characterization used for Figure 3 and Table 1.
* :mod:`repro.analysis.metrics` — aggregate metrics over run results.
* :mod:`repro.analysis.report` — plain-text tables and ASCII charts in
  the shape of the paper's figures.
* :mod:`repro.analysis.profile_report` — renderings of
  ``repro.paging-profile/1`` blocks: effectiveness tables, phase
  tables, access heatmaps, and scheme-vs-scheme diffs.
* :mod:`repro.analysis.fleet_report` — renderings of
  ``repro.fleet-manifest/1`` blocks: per-tenant QoS tables and
  EPC-policy comparisons.
"""

from repro.analysis.patterns import (
    PatternKind,
    PatternSummary,
    characterize_trace,
    characterize_workload,
    classify_benchmark,
)
from repro.analysis.metrics import (
    geomean_normalized,
    mean_improvement,
    summarize_results,
)
from repro.analysis.fleet_report import (
    render_fleet_table,
    render_policy_comparison,
)
from repro.analysis.profile_report import (
    diff_profiles,
    render_heatmap,
    render_profile,
    render_profile_diff,
    render_profile_summary,
)
from repro.analysis.report import ascii_bar_chart, format_table, render_series

__all__ = [
    "PatternKind",
    "PatternSummary",
    "characterize_trace",
    "characterize_workload",
    "classify_benchmark",
    "geomean_normalized",
    "mean_improvement",
    "summarize_results",
    "ascii_bar_chart",
    "format_table",
    "render_series",
    "render_profile",
    "render_profile_summary",
    "render_heatmap",
    "diff_profiles",
    "render_profile_diff",
    "render_fleet_table",
    "render_policy_comparison",
]
