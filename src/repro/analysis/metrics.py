"""Aggregate metrics over run results.

The paper reports arithmetic-mean percentage improvements over its
benchmark groups (e.g. "on average, DFP achieves 11.4% for the
regular benchmarks"); geometric means of normalized times are also
provided since they are the standard for ratio summaries.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import SimulationError
from repro.sim.results import RunResult, improvement_pct, normalized_time

__all__ = ["mean_improvement", "geomean_normalized", "summarize_results"]


def mean_improvement(
    pairs: Iterable[Tuple[RunResult, RunResult]],
) -> float:
    """Arithmetic mean of per-benchmark improvements (paper's metric).

    ``pairs`` yields ``(result, baseline)`` tuples.
    """
    values = [improvement_pct(result, base) for result, base in pairs]
    if not values:
        raise SimulationError("mean_improvement needs at least one pair")
    return sum(values) / len(values)


def geomean_normalized(
    pairs: Iterable[Tuple[RunResult, RunResult]],
) -> float:
    """Geometric mean of normalized execution times."""
    logs: List[float] = []
    for result, base in pairs:
        logs.append(math.log(normalized_time(result, base)))
    if not logs:
        raise SimulationError("geomean_normalized needs at least one pair")
    return math.exp(sum(logs) / len(logs))


def summarize_results(
    per_workload: Mapping[str, Mapping[str, RunResult]],
    *,
    baseline: str = "baseline",
) -> Dict[str, Dict[str, float]]:
    """Normalize every scheme against the baseline, per workload.

    Input: ``{workload: {scheme: result}}``.
    Output: ``{workload: {scheme: normalized_time}}`` — exactly the
    data behind the paper's normalized-execution-time bar charts.
    """
    table: Dict[str, Dict[str, float]] = {}
    for workload, by_scheme in per_workload.items():
        if baseline not in by_scheme:
            raise SimulationError(
                f"workload {workload!r} has no {baseline!r} run to normalize by"
            )
        base = by_scheme[baseline]
        table[workload] = {
            scheme: normalized_time(result, base)
            for scheme, result in by_scheme.items()
        }
    return table
