"""Render paging profiles: effectiveness tables, phases, heatmaps, diffs.

The consumer side of :mod:`repro.obs.paging`: given one or two
``repro.paging-profile/1`` blocks, produce the plain-text views the
``repro profile`` and ``repro report`` commands print — a preload
effectiveness table, the fault-cause and eviction attribution lines,
the phase table segmented from windowed fault rates, an ASCII
access×page heatmap, and the scheme-vs-scheme effectiveness diff
(precision/recall of preloads, refault rate, phase counts).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.errors import ObsError

__all__ = [
    "render_profile",
    "render_profile_summary",
    "render_heatmap",
    "diff_profiles",
    "render_profile_diff",
]

#: Shade ramp for the heatmap, coldest to hottest.
_SHADES = " .:-=+*#%@"

#: The effectiveness ratios every profile carries, in display order.
_EFFECTIVENESS_KEYS = (
    "preload_precision",
    "preload_recall",
    "late_rate",
    "refault_rate",
    "waste_rate",
)


def _section(block: Dict[str, object], key: str) -> Dict[str, object]:
    value = block.get(key)
    if not isinstance(value, dict):
        raise ObsError(f"paging profile lacks a {key!r} section")
    return value


def render_profile(
    profile: Dict[str, object], *, label: str = "", heatmap: bool = True
) -> str:
    """Full plain-text view of one profile block."""
    totals = _section(profile, "totals")
    preloads = _section(totals, "preloads")
    causes = _section(totals, "fault_causes")
    evictions = _section(totals, "evictions")
    effectiveness = _section(profile, "effectiveness")
    title = f"paging profile — {label}" if label else "paging profile"
    lines: List[str] = [title]
    lines.append(
        f"  accesses {totals['accesses']:,}  faults {totals['faults']:,}  "
        f"evictions {evictions['total']:,}  scans {totals['scans']:,}"
    )
    lines.append("")
    lines.append(
        format_table(
            ["preload outcome", "count"],
            [
                ["useful (touched while resident)", preloads["useful"]],
                ["late (in flight at fault)", preloads["late_inflight"]],
                ["late (still queued at fault)", preloads["late_queued"]],
                ["wasted (evicted untouched)", preloads["wasted_evicted"]],
                ["wasted (untouched at exit)", preloads["wasted_leftover"]],
                ["redundant (already resident)", preloads["redundant"]],
                ["aborted collateral", preloads["aborted_collateral"]],
                ["pending at exit", preloads["pending_at_exit"]],
                ["completed / enqueued", f"{preloads['completed']} / {preloads['enqueued']}"],
            ],
            title="preload ledger",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["fault cause", "count"],
            [
                ["cold (first touch, no preloader)", causes["cold"]],
                ["predictor miss (preloader live)", causes["predictor_miss"]],
                ["refault (premature eviction)", causes["refault"]],
                ["late (raced its own preload)", causes["late"]],
            ],
            title="fault attribution",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["metric", "value"],
            [[key, effectiveness[key]] for key in _EFFECTIVENESS_KEYS],
            title="effectiveness",
        )
    )
    lines.append("")
    lines.append(
        "eviction attribution: "
        f"{evictions['victims_accessed']} victims held the A bit, "
        f"{evictions['victims_preloaded_untouched']} were untouched preloads, "
        f"{evictions['premature_refaulted']} refaulted later "
        f"({evictions['second_chances']} CLOCK second chances granted)"
    )
    phases = profile.get("phases") or []
    if phases:
        lines.append("")
        lines.append(
            format_table(
                ["phase", "label", "accesses", "faults", "fault rate", "credited"],
                [
                    [
                        phase["phase"],
                        phase["label"],
                        phase["accesses"],
                        phase["faults"],
                        phase["fault_rate"],
                        phase["scan_credited_pages"],
                    ]
                    for phase in phases
                ],
                title="phases (windowed fault rate vs run mean)",
            )
        )
    if heatmap:
        lines.append("")
        lines.append(render_heatmap(profile))
    return "\n".join(lines)


def render_profile_summary(profile: Dict[str, object]) -> str:
    """Compact three-line summary (the ``repro report`` rendering)."""
    totals = _section(profile, "totals")
    preloads = _section(totals, "preloads")
    effectiveness = _section(profile, "effectiveness")
    phases = profile.get("phases") or []
    wasted = int(preloads["wasted_evicted"]) + int(preloads["wasted_leftover"])  # type: ignore[arg-type]
    late = int(preloads["late_inflight"]) + int(preloads["late_queued"])  # type: ignore[arg-type]
    return "\n".join(
        [
            (
                f"  preloads: {preloads['completed']} completed — "
                f"{preloads['useful']} useful, {late} late, {wasted} wasted"
            ),
            (
                f"  precision {effectiveness['preload_precision']}  "
                f"recall {effectiveness['preload_recall']}  "
                f"refault rate {effectiveness['refault_rate']}"
            ),
            (
                f"  {totals['faults']:,} faults over {totals['accesses']:,} "
                f"accesses in {len(phases)} phase(s)"
            ),
        ]
    )


def render_heatmap(profile: Dict[str, object]) -> str:
    """ASCII access heatmap: page buckets (rows) × time windows (cols)."""
    heatmap = _section(profile, "heatmap")
    counts = heatmap.get("counts") or []
    buckets = int(heatmap["page_buckets"])  # type: ignore[arg-type]
    bucket_pages = int(heatmap["bucket_pages"])  # type: ignore[arg-type]
    base_page = int(profile.get("base_page", 0))  # type: ignore[arg-type]
    if not counts:
        return "access heatmap: (no accesses recorded)"
    peak = max(max(column) for column in counts) or 1
    lines = [
        "access heatmap (rows: page range, cols: time; "
        f"shade ramp '{_SHADES}')"
    ]
    for bucket in range(buckets):
        low = base_page + bucket * bucket_pages
        high = min(
            low + bucket_pages - 1,
            base_page + int(profile.get("elrange_pages", bucket_pages)) - 1,  # type: ignore[arg-type]
        )
        row = "".join(
            _SHADES[min(len(_SHADES) - 1, (column[bucket] * (len(_SHADES) - 1) + peak - 1) // peak)]
            for column in counts
        )
        lines.append(f"  pages {low:>6}-{high:<6} |{row}|")
    return "\n".join(lines)


def diff_profiles(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    """Structured effectiveness diff between two profile blocks."""
    eff_a = _section(a, "effectiveness")
    eff_b = _section(b, "effectiveness")
    totals_a = _section(a, "totals")
    totals_b = _section(b, "totals")
    effectiveness = {
        key: {
            "a": eff_a[key],
            "b": eff_b[key],
            "delta": round(float(eff_b[key]) - float(eff_a[key]), 6),  # type: ignore[arg-type]
        }
        for key in _EFFECTIVENESS_KEYS
    }
    counts = {
        key: {
            "a": int(totals_a[key]),  # type: ignore[arg-type]
            "b": int(totals_b[key]),  # type: ignore[arg-type]
            "delta": int(totals_b[key]) - int(totals_a[key]),  # type: ignore[arg-type]
        }
        for key in ("faults", "accesses")
    }
    preloads_a = _section(totals_a, "preloads")
    preloads_b = _section(totals_b, "preloads")
    for key in ("completed", "useful"):
        counts[f"preloads_{key}"] = {
            "a": int(preloads_a[key]),  # type: ignore[arg-type]
            "b": int(preloads_b[key]),  # type: ignore[arg-type]
            "delta": int(preloads_b[key]) - int(preloads_a[key]),  # type: ignore[arg-type]
        }
    return {
        "effectiveness": effectiveness,
        "counts": counts,
        "phases": {
            "a": len(a.get("phases") or []),
            "b": len(b.get("phases") or []),
        },
    }


def render_profile_diff(
    diff: Dict[str, object],
    *,
    label_a: str = "a",
    label_b: str = "b",
    title: Optional[str] = None,
) -> str:
    """Plain-text view of a :func:`diff_profiles` result."""
    effectiveness = _section(diff, "effectiveness")
    counts = _section(diff, "counts")
    phases = _section(diff, "phases")
    rows = []
    for key in _EFFECTIVENESS_KEYS:
        entry = effectiveness[key]
        rows.append([key, entry["a"], entry["b"], entry["delta"]])  # type: ignore[index]
    for key in sorted(counts):
        entry = counts[key]
        rows.append([key, entry["a"], entry["b"], entry["delta"]])  # type: ignore[index]
    rows.append(["phases", phases["a"], phases["b"], int(phases["b"]) - int(phases["a"])])  # type: ignore[arg-type]
    return format_table(
        ["metric", label_a, label_b, "delta (b-a)"],
        rows,
        title=title or f"effectiveness diff — {label_a} vs {label_b}",
    )
