"""repro — reproduction of *Regaining Lost Seconds: Efficient Page
Preloading for SGX Enclaves* (Liu et al., Middleware '20).

The library provides:

* a cycle-accounted simulation of SGX EPC paging
  (:mod:`repro.enclave`): the 96 MB usable EPC, the
  AEX/ELDU/ERESUME fault cost model, CLOCK eviction, and the
  exclusive non-preemptible page-load channel;
* the paper's two preloading schemes (:mod:`repro.core`): DFP
  (dynamic fault-history based preloading with the multiple-stream
  predictor and abort valve) and SIP (profile-guided source
  instrumentation with the shared residency bitmap), plus their
  hybrid;
* deterministic workload models of the paper's benchmarks
  (:mod:`repro.workloads`);
* the experiment drivers and analysis helpers that regenerate every
  table and figure of the evaluation (:mod:`repro.sim`,
  :mod:`repro.analysis`, and the ``benchmarks/`` tree);
* a passive observability layer (:mod:`repro.obs`): metrics
  registries, timeline trace sinks with Chrome ``trace_event``
  export, and self-describing run manifests with a cycle-attribution
  diff (``repro report``);
* a resilience layer (:mod:`repro.robust`): one
  :class:`ExecutionPolicy` object configuring worker count, retry
  with backoff, per-job timeouts, checkpoint/resume, and
  deterministic fault injection for the experiment drivers.

Quickstart::

    from repro import SimConfig, build_workload, simulate, improvement_pct

    config = SimConfig.scaled(16)
    lbm = build_workload("lbm", scale=16)
    base = simulate(lbm, config, "baseline")
    dfp = simulate(lbm, config, "dfp-stop")
    print(f"DFP improves lbm by {improvement_pct(dfp, base):.1f}%")
"""

from repro.core.config import CostModel, SimConfig
from repro.core.instrumentation import SipPlan, build_sip_plan
from repro.core.profiler import profile_workload
from repro.core.schemes import SCHEME_NAMES, Scheme, make_scheme
from repro.errors import (
    ChannelError,
    ConfigError,
    EpcError,
    InstrumentationError,
    ObsError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.obs.manifest import build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.robust import ExecutionPolicy, FaultPlan, RetryPolicy
from repro.obs.trace import RingBufferSink, TraceSink
from repro.sim.engine import prepare_sip_plan, simulate, simulate_native
from repro.sim.fleet import (
    EPC_POLICIES,
    FleetResult,
    FleetScenario,
    TenantSpec,
    build_scenario,
    simulate_fleet,
)
from repro.sim.multi import simulate_shared
from repro.sim.results import RunResult, improvement_pct, normalized_time
from repro.sim.sweep import compare_schemes, sweep_config
from repro.workloads.base import Access, Workload
from repro.workloads.registry import (
    CPP_BENCHMARKS,
    LARGE_IRREGULAR,
    LARGE_REGULAR,
    SMALL_WORKING_SET,
    WORKLOAD_NAMES,
    build_workload,
)

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "SimConfig",
    "SipPlan",
    "build_sip_plan",
    "profile_workload",
    "prepare_sip_plan",
    "Scheme",
    "make_scheme",
    "SCHEME_NAMES",
    "simulate",
    "simulate_native",
    "simulate_shared",
    "simulate_fleet",
    "build_scenario",
    "TenantSpec",
    "FleetScenario",
    "FleetResult",
    "EPC_POLICIES",
    "RunResult",
    "improvement_pct",
    "normalized_time",
    "compare_schemes",
    "sweep_config",
    "ExecutionPolicy",
    "RetryPolicy",
    "FaultPlan",
    "Access",
    "Workload",
    "build_workload",
    "WORKLOAD_NAMES",
    "LARGE_REGULAR",
    "LARGE_IRREGULAR",
    "SMALL_WORKING_SET",
    "CPP_BENCHMARKS",
    "MetricsRegistry",
    "TraceSink",
    "RingBufferSink",
    "build_manifest",
    "ReproError",
    "ConfigError",
    "ObsError",
    "EpcError",
    "ChannelError",
    "WorkloadError",
    "InstrumentationError",
    "SimulationError",
]
