"""Run results and the comparisons the paper's figures are built from.

Every figure in the evaluation normalizes execution time against the
original (baseline) run of the same workload, so the central helpers
here are :func:`normalized_time` and :func:`improvement_pct`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.core.config import SimConfig
from repro.enclave.events import TimelineEvent
from repro.enclave.stats import RunStats
from repro.errors import SimulationError

__all__ = ["RunResult", "normalized_time", "improvement_pct"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run."""

    workload: str
    scheme: str
    input_set: str
    seed: int
    total_cycles: int
    stats: RunStats
    config: SimConfig
    #: SIP instrumentation points compiled into the enclave (0 when
    #: SIP is off) — the Table 2 quantity.
    sip_points: int = 0
    #: Timeline events, populated only when the run recorded them.
    events: Optional[List[TimelineEvent]] = field(default=None, compare=False)
    #: Metrics dump (:meth:`repro.obs.metrics.MetricsRegistry.as_dict`),
    #: populated only when the run was observed.  Excluded from
    #: comparison: observing a run must not change its identity.
    metrics: Optional[Dict[str, object]] = field(default=None, compare=False)
    #: Which engine executed the run (``"scalar"`` or ``"batched"``).
    #: Excluded from comparison and from manifests: the batched engine
    #: is byte-identical to the scalar one by contract, so the engine
    #: choice is provenance, not part of the run's identity.
    engine: str = field(default="scalar", compare=False)

    @property
    def seconds(self) -> float:
        """Wall time at the paper platform's 3.5 GHz."""
        return units.cycles_to_seconds(self.total_cycles)

    @property
    def fault_overhead_fraction(self) -> float:
        """Share of run time spent on non-compute work."""
        if self.total_cycles == 0:
            return 0.0
        return self.stats.time.overhead / self.total_cycles

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        s = self.stats
        return (
            f"{self.workload} [{self.scheme}, {self.input_set}]: "
            f"{self.total_cycles:,} cycles ({self.seconds:.3f}s @3.5GHz); "
            f"{s.accesses:,} accesses, {s.faults:,} faults "
            f"({s.fault_rate:.2%}), {s.preloads_completed:,} preloads "
            f"({s.preload_accuracy:.0%} useful), "
            f"{s.sip_loads:,} SIP loads / {s.sip_checks:,} checks"
        )


def normalized_time(result: RunResult, baseline: RunResult) -> float:
    """Execution time normalized to the baseline run (paper's y-axes).

    1.0 means unchanged; below 1.0 is an improvement.
    """
    _check_comparable(result, baseline)
    return result.total_cycles / baseline.total_cycles


def improvement_pct(result: RunResult, baseline: RunResult) -> float:
    """Percent improvement over the baseline (positive = faster)."""
    return (1.0 - normalized_time(result, baseline)) * 100.0


def _check_comparable(result: RunResult, baseline: RunResult) -> None:
    if baseline.total_cycles <= 0:
        raise SimulationError("baseline run has no cycles")
    if result.workload != baseline.workload:
        raise SimulationError(
            f"comparing different workloads: {result.workload!r} "
            f"vs {baseline.workload!r}"
        )
    if result.input_set != baseline.input_set:
        raise SimulationError(
            f"comparing different input sets: {result.input_set!r} "
            f"vs {baseline.input_set!r}"
        )
