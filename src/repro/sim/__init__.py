"""Simulation engine and experiment drivers.

* :mod:`repro.sim.engine` — runs one workload under one scheme on the
  enclave substrate, producing a :class:`~repro.sim.results.RunResult`.
* :mod:`repro.sim.results` — run results and comparisons.
* :mod:`repro.sim.sweep` — parameter sweeps and scheme comparisons,
  the building blocks of every figure in the evaluation.
"""

from repro.sim.engine import simulate, simulate_native, prepare_sip_plan
from repro.sim.multi import simulate_shared
from repro.sim.results import RunResult, improvement_pct, normalized_time
from repro.sim.sweep import compare_schemes, sweep_config

__all__ = [
    "simulate",
    "simulate_native",
    "simulate_shared",
    "prepare_sip_plan",
    "RunResult",
    "improvement_pct",
    "normalized_time",
    "compare_schemes",
    "sweep_config",
]
