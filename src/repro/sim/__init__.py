"""Simulation engine and experiment drivers.

* :mod:`repro.sim.engine` — runs one workload under one scheme on the
  enclave substrate, producing a :class:`~repro.sim.results.RunResult`.
* :mod:`repro.sim.fleet` — fleet-scale multi-tenant EPC simulation:
  typed :class:`TenantSpec`/:class:`FleetScenario` specs, admission
  control, churn, open-loop requests, pluggable EPC frame policies.
* :mod:`repro.sim.multi` — the deprecated ``simulate_shared`` shim
  over the fleet API.
* :mod:`repro.sim.results` — run results and comparisons.
* :mod:`repro.sim.sweep` — parameter sweeps and scheme comparisons,
  the building blocks of every figure in the evaluation.
* :mod:`repro.sim.parallel` — the resilient process-pool job runner
  behind the drivers' ``policy=`` parameter (retry, timeout,
  checkpoint/resume, fault injection — see :mod:`repro.robust`).
* :mod:`repro.sim.tracecache` — byte-budgeted LRU of materialized
  workload traces, shared by every scheme replay of one trace.
"""

from repro.robust import ExecutionPolicy, FaultPlan, RetryPolicy
from repro.sim.engine import simulate, simulate_native, prepare_sip_plan
from repro.sim.fleet import (
    EPC_POLICIES,
    FleetResult,
    FleetScenario,
    SCENARIO_NAMES,
    TenantSpec,
    build_scenario,
    simulate_fleet,
)
from repro.sim.multi import simulate_shared
from repro.sim.parallel import JobSpec, WorkloadSpec, run_jobs
from repro.sim.results import RunResult, improvement_pct, normalized_time
from repro.sim.sweep import compare_schemes, sweep_config
from repro.sim.tracecache import TraceCache, shared_trace_cache

__all__ = [
    "simulate",
    "simulate_native",
    "simulate_shared",
    "simulate_fleet",
    "build_scenario",
    "TenantSpec",
    "FleetScenario",
    "FleetResult",
    "EPC_POLICIES",
    "SCENARIO_NAMES",
    "prepare_sip_plan",
    "RunResult",
    "improvement_pct",
    "normalized_time",
    "compare_schemes",
    "sweep_config",
    "JobSpec",
    "WorkloadSpec",
    "run_jobs",
    "ExecutionPolicy",
    "RetryPolicy",
    "FaultPlan",
    "TraceCache",
    "shared_trace_cache",
]
