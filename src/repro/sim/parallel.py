"""Parallel experiment execution: the process-pool job runner.

Every figure of the evaluation is an embarrassingly parallel set of
independent simulations — same code, different ``(workload, config,
scheme, seed)`` coordinates — so the experiment drivers
(:mod:`repro.sim.sweep`) fan their points out over a
``ProcessPoolExecutor`` here instead of running them one at a time.

Three properties the drivers rely on:

* **Determinism** — a job is a picklable :class:`JobSpec` naming a
  *registry* workload (name + scale), never a live generator; the
  worker rebuilds the workload from the registry, so a job's result is
  a function of the spec alone and ``jobs=N`` reproduces ``jobs=1``
  byte for byte (proved by ``tests/sim/test_parallel.py`` against the
  PR-2 run manifests).
* **Order** — results come back in submission order no matter which
  worker finished first.
* **Failure attribution** — a worker exception is re-raised as a
  typed :class:`~repro.errors.ParallelExecutionError` naming the job,
  with the original exception chained.

Workers run *blind*: no metrics registry, no trace sink, no event
recording.  Observability in this codebase is passive by contract
(observed and blind runs compare equal), so attaching instruments in
workers would only produce N disconnected registries that cannot be
merged meaningfully; callers who want an observed run re-run the one
point they care about with :func:`repro.sim.engine.simulate` directly.

This module is the single place in the tree allowed to touch
``concurrent.futures``/``multiprocessing`` (lint rule RL007): pool
sizing, submission order and failure wrapping must stay in one spot
for the determinism guarantee to be auditable.
"""

from __future__ import annotations

import multiprocessing  # repro-lint: disable=RL007  the sanctioned home
from concurrent import futures  # repro-lint: disable=RL007  the sanctioned home
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.errors import ConfigError, ParallelExecutionError
from repro.sim.results import RunResult
from repro.workloads.base import Workload

__all__ = ["WorkloadSpec", "JobSpec", "run_job", "run_jobs"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable recipe for a registry workload.

    Live :class:`~repro.workloads.base.Workload` objects hold phase
    closures and cannot cross a process boundary; a spec carries only
    the registry name and build scale and is rebuilt on the far side
    with :func:`repro.workloads.registry.build_workload` — which is
    also why parallel drivers require a spec where serial ones accept
    a factory.
    """

    name: str
    scale: int = 1

    def build(self) -> Workload:
        """Construct the workload this spec names."""
        from repro.workloads.registry import build_workload

        return build_workload(self.name, scale=self.scale)


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: everything a worker needs, nothing live.

    All fields are picklable values; compiled SIP plans ride along so
    workers never re-run the profiler (plan compilation is memoized
    once, in the parent — see :func:`repro.sim.sweep.sweep_config`).
    """

    workload: WorkloadSpec
    config: SimConfig
    scheme: str
    seed: int = 0
    input_set: str = "ref"
    sip_plan: Optional[SipPlan] = field(default=None, compare=False)
    max_accesses: Optional[int] = None

    def describe(self) -> str:
        """Short identity string used in progress and error messages."""
        return (
            f"{self.workload.name}@x{self.workload.scale}"
            f"/{self.scheme}/seed={self.seed}/{self.input_set}"
        )


def run_job(spec: JobSpec) -> RunResult:
    """Execute one job in the current process.

    This is the pool's target function and the ``jobs=1`` fallback.
    The workload's trace is served from this process's shared
    materialization cache, so a worker running several schemes of the
    same point walks the generator once.
    """
    from repro.sim.engine import simulate
    from repro.sim.tracecache import shared_trace_cache

    workload = spec.workload.build()
    trace = shared_trace_cache().get(
        workload, seed=spec.seed, input_set=spec.input_set
    )
    return simulate(
        workload,
        spec.config,
        spec.scheme,
        seed=spec.seed,
        input_set=spec.input_set,
        sip_plan=spec.sip_plan,
        trace=trace,
    )


def _warm_trace_cache(specs: Sequence[JobSpec]) -> None:
    """Materialize each distinct trace in the parent before forking.

    With the ``fork`` start method the pool's workers inherit the
    parent's populated :func:`~repro.sim.tracecache.shared_trace_cache`
    copy-on-write, so N workers replay traces the parent walked once
    instead of each re-walking the generator.  Under ``spawn``/
    ``forkserver`` nothing is inherited, so the warm-up would be pure
    extra parent work and is skipped.
    """
    if multiprocessing.get_start_method() != "fork":
        return
    from repro.sim.tracecache import shared_trace_cache

    cache = shared_trace_cache()
    seen: set[Tuple[WorkloadSpec, int, str]] = set()
    for spec in specs:
        identity = (spec.workload, spec.seed, spec.input_set)
        if identity in seen:
            continue
        seen.add(identity)
        try:
            cache.get(
                spec.workload.build(), seed=spec.seed, input_set=spec.input_set
            )
        except Exception:
            # Warm-up is best-effort: a spec that cannot build fails
            # again in its worker, where the failure is wrapped and
            # attributed through the one sanctioned error path.
            continue


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 1,
    on_result: Optional[Callable[[int, JobSpec], None]] = None,
) -> List[RunResult]:
    """Run every job; return results in submission order.

    ``jobs`` is the worker-process count; ``jobs=1`` (the default)
    runs everything serially in-process with no pool at all, which is
    both the fallback and the reference the determinism suite compares
    against.  ``on_result`` fires once per finished job — in
    *completion* order, with the job's submission index — and is how
    the sweep drivers keep their progress ticks flowing while futures
    resolve out of order.

    A failing job raises :class:`~repro.errors.ParallelExecutionError`
    naming it; remaining jobs are cancelled where possible (results of
    jobs that already finished are discarded — a sweep with a poisoned
    point has no meaningful partial answer).
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be at least 1, got {jobs}")
    specs = list(specs)
    if jobs == 1 or len(specs) <= 1:
        results: List[RunResult] = []
        for index, spec in enumerate(specs):
            try:
                results.append(run_job(spec))
            except Exception as exc:
                raise ParallelExecutionError(
                    f"job {spec.describe()} failed: {exc}", job=spec.describe()
                ) from exc
            if on_result is not None:
                on_result(index, spec)
        return results

    _warm_trace_cache(specs)
    slots: List[Optional[RunResult]] = [None] * len(specs)
    with futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        index_of: Dict[futures.Future, int] = {
            pool.submit(run_job, spec): index for index, spec in enumerate(specs)
        }
        try:
            for future in futures.as_completed(index_of):
                index = index_of[future]
                spec = specs[index]
                try:
                    slots[index] = future.result()
                except Exception as exc:
                    raise ParallelExecutionError(
                        f"job {spec.describe()} failed in a worker: {exc}",
                        job=spec.describe(),
                    ) from exc
                if on_result is not None:
                    on_result(index, spec)
        except BaseException:
            for future in index_of:
                future.cancel()
            raise
    assert all(result is not None for result in slots)
    return slots  # type: ignore[return-value]
