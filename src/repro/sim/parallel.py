"""Parallel experiment execution: the resilient process-pool job runner.

Every figure of the evaluation is an embarrassingly parallel set of
independent simulations — same code, different ``(workload, config,
scheme, seed)`` coordinates — so the experiment drivers
(:mod:`repro.sim.sweep`) fan their points out over a
``ProcessPoolExecutor`` here instead of running them one at a time.

Properties the drivers rely on:

* **Determinism** — a job is a picklable :class:`JobSpec` naming a
  *registry* workload (name + scale), never a live generator; the
  worker rebuilds the workload from the registry, so a job's result is
  a function of the spec alone and ``jobs=N`` reproduces ``jobs=1``
  byte for byte (proved by ``tests/sim/test_parallel.py`` against the
  PR-2 run manifests).  Retries re-run the same pure function, so
  resilience never changes a result, only whether one arrives.
* **Order** — results come back in submission order no matter which
  worker finished first.
* **Failure attribution** — a job that fails its whole attempt budget
  raises a typed :class:`~repro.errors.JobRetriesExhaustedError`
  naming the job and the attempt count, with the last attempt's
  failure chained.
* **Resilience** (:mod:`repro.robust`, configured through one
  :class:`~repro.robust.ExecutionPolicy`): failed attempts are retried
  with exponential backoff; attempts exceeding the per-job timeout —
  measured from when the attempt starts executing (submission is
  throttled to free workers), so a job queued behind busy workers does
  not burn its budget waiting for a slot — are abandoned
  (:class:`~repro.errors.JobTimeoutError`) and retried, and a worker
  still wedged on an abandoned attempt when the sweep finishes is
  detached rather than waited for;
  every pool result must pass a replayed-manifest digest check before
  it is accepted (:class:`~repro.errors.ResultIntegrityError`
  otherwise); completed runs are checkpointed and resumable; and if
  the pool itself dies (``BrokenProcessPool``) the runner degrades
  gracefully to serial in-process execution of the unfinished jobs.
  A deterministic :class:`~repro.robust.FaultPlan` can inject each of
  these failure modes on schedule, which is how the machinery is
  tested without real flakiness.

Workers run blind by default, but an observed run is one kwarg away:
``run_jobs(..., telemetry=ExecTelemetry(TelemetryConfig(...)))`` ships
a picklable :class:`~repro.obs.exec_telemetry.TelemetryConfig` with
every submission, each worker runs its job under a private metrics
registry and/or bounded event ring, and the dumps come back as a
:class:`~repro.obs.exec_telemetry.WorkerTelemetry` payload beside the
result.  Passivity survives the process boundary: the worker strips
the dumps off the :class:`~repro.sim.results.RunResult` *before*
computing the integrity digest, so results, digests and checkpoint
records are byte-identical to a blind run, and the parent merges
payloads deterministically in submission order.  The runner also
narrates its own schedule (queue waits, attempts, backoffs, timeout
abandons, injected faults, checkpoint I/O) into the same collector as
typed execution spans — emitted only through the
:mod:`repro.obs.exec_telemetry` API (lint rule RL009), never as
ad-hoc event dicts.

This module is the single place in the tree allowed to touch
``concurrent.futures``/``multiprocessing`` (lint rule RL007): pool
sizing, submission order, failure wrapping and timeout bookkeeping
must stay in one spot for the determinism guarantee to be auditable.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing  # repro-lint: disable=RL007  the sanctioned home
import time
from concurrent import futures  # repro-lint: disable=RL007  the sanctioned home
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.errors import (
    ConfigError,
    JobRetriesExhaustedError,
    JobTimeoutError,
    ParallelExecutionError,
    ResultIntegrityError,
)
from repro.obs.exec_telemetry import (
    ExecTelemetry,
    TelemetryConfig,
    WorkerTelemetry,
)
from repro.robust import (
    CheckpointStore,
    ExecutionPolicy,
    FaultKind,
    FaultPlan,
    checkpoint_key,
    perform_worker_fault,
    resolve_policy,
)
from repro.sim.results import RunResult
from repro.workloads.base import Workload

__all__ = ["WorkloadSpec", "JobSpec", "run_job", "run_jobs"]

#: Parent-side retry budget for transient submission errors — a fixed
#: small allowance, independent of the per-job attempt budget (a
#: submission that never happened should not burn the job's attempts).
_SUBMIT_TRIES = 3

class _InjectedDispatchError(Exception):
    """Private sentinel for an injected serial-path dispatch failure.

    The serial attempt loop absorbs *only* this type when
    :attr:`~repro.robust.FaultKind.SUBMIT_ERROR` is injected.  A real
    ``OSError`` escaping the simulation (or a broken-pipe from a
    delivery callback) is a genuine failure and must never be mistaken
    for the injected transient and retried without bound.
    """


@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable recipe for a registry workload.

    Live :class:`~repro.workloads.base.Workload` objects hold phase
    closures and cannot cross a process boundary; a spec carries only
    the registry name and build scale and is rebuilt on the far side
    with :func:`repro.workloads.registry.build_workload` — which is
    also why parallel drivers require a spec where serial ones accept
    a factory.
    """

    name: str
    scale: int = 1

    def build(self) -> Workload:
        """Construct the workload this spec names."""
        from repro.workloads.registry import build_workload

        return build_workload(self.name, scale=self.scale)


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: everything a worker needs, nothing live.

    All fields are picklable values; compiled SIP plans ride along so
    workers never re-run the profiler (plan compilation is memoized
    once, in the parent — see :func:`repro.sim.sweep.sweep_config`).
    """

    workload: WorkloadSpec
    config: SimConfig
    scheme: str
    seed: int = 0
    input_set: str = "ref"
    sip_plan: Optional[SipPlan] = field(default=None, compare=False)
    max_accesses: Optional[int] = None

    def describe(self) -> str:
        """Short identity string used in progress and error messages."""
        return (
            f"{self.workload.name}@x{self.workload.scale}"
            f"/{self.scheme}/seed={self.seed}/{self.input_set}"
        )

    def checkpoint_key(self) -> str:
        """Content address of this job for the checkpoint store.

        Digests every run-defining coordinate, including the full
        configuration snapshot — change any knob and the address
        moves, so a resume can never serve a stale record.  The SIP
        plan is excluded: it is a deterministic compile-time artifact
        of coordinates already in the key.
        """
        return checkpoint_key(
            {
                "workload": {
                    "name": self.workload.name,
                    "scale": self.workload.scale,
                },
                "scheme": self.scheme,
                "seed": self.seed,
                "input_set": self.input_set,
                "max_accesses": self.max_accesses,
                "config": dataclasses.asdict(self.config),
            }
        )


def run_job(spec: JobSpec, *, metrics=None, tracer=None) -> RunResult:
    """Execute one job in the current process.

    This is the pool's target function and the ``jobs=1`` fallback.
    The workload's trace is served from this process's shared
    materialization cache, so a worker running several schemes of the
    same point walks the generator once.  ``metrics``/``tracer`` are
    the engine's passive observers
    (:class:`~repro.obs.metrics.MetricsRegistry`,
    :class:`~repro.obs.trace.TraceSink`); attaching them changes no
    result byte.
    """
    from repro.sim.engine import simulate
    from repro.sim.tracecache import shared_trace_cache

    workload = spec.workload.build()
    trace = shared_trace_cache().get(
        workload, seed=spec.seed, input_set=spec.input_set
    )
    return simulate(
        workload,
        spec.config,
        spec.scheme,
        seed=spec.seed,
        input_set=spec.input_set,
        sip_plan=spec.sip_plan,
        trace=trace,
        max_accesses=spec.max_accesses,
        metrics=metrics,
        tracer=tracer,
    )


@dataclass(frozen=True)
class _Envelope:
    """A worker's result plus the integrity digest it computed at source.

    ``telemetry`` rides along *outside* the digest: the worker strips
    the observability dumps off the result before digesting, so an
    observed result's digest (and any checkpoint record built from it)
    is byte-identical to a blind run's.
    """

    result: RunResult
    digest: str
    telemetry: Optional[WorkerTelemetry] = None


def _enveloped_run(
    spec: JobSpec,
    plan: Optional[FaultPlan],
    job_index: int,
    attempt: int,
    *,
    in_worker: bool,
    obs: Optional[TelemetryConfig] = None,
) -> _Envelope:
    """Run one job attempt and wrap its result with a source digest.

    Fault injection happens here, on both sides of the process
    boundary: worker-side faults fire before the simulation, and
    result corruption is applied *after* the digest was computed —
    exactly the corrupted-in-transit scenario the integrity check
    exists to catch.

    With an enabled ``obs`` config the job runs under a private
    metrics registry / bounded event ring; the dumps are detached from
    the result (and so excluded from the digest) and shipped as a
    :class:`~repro.obs.exec_telemetry.WorkerTelemetry` payload.
    """
    from repro.obs.manifest import build_manifest, manifest_digest

    fault = plan.fault_for(job_index, attempt) if plan is not None else None
    if fault is not None:
        perform_worker_fault(
            fault,
            in_worker=in_worker,
            hang_s=plan.hang_s if plan is not None else 0.5,
        )
    registry = sink = None
    if obs is not None and obs.enabled:
        if obs.metrics:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        if obs.trace:
            from repro.obs.trace import RingBufferSink

            sink = RingBufferSink(obs.trace_capacity)
        if registry is not None and sink is not None:
            from repro.obs.trace import register_sink_metrics

            register_sink_metrics(registry, sink)
    result = run_job(spec, metrics=registry, tracer=sink)
    telemetry: Optional[WorkerTelemetry] = None
    if registry is not None or sink is not None:
        from repro.obs.trace import event_to_dict

        telemetry = WorkerTelemetry(
            metrics=result.metrics,
            events=(
                tuple(event_to_dict(event) for event in sink.events)
                if sink is not None
                else ()
            ),
            dropped=sink.dropped if sink is not None else 0,
        )
        # Strip the observability payload before digesting: passivity
        # means the observed result — and therefore its digest and any
        # checkpoint record — must be the blind run's bytes.
        result = dataclasses.replace(result, metrics=None, events=None)
    digest = manifest_digest(build_manifest(result))
    if fault is FaultKind.CORRUPT:
        result = dataclasses.replace(
            result, total_cycles=result.total_cycles + 1
        )
    return _Envelope(result=result, digest=digest, telemetry=telemetry)


def _pool_entry(
    spec: JobSpec,
    plan: Optional[FaultPlan],
    job_index: int,
    attempt: int,
    obs: Optional[TelemetryConfig] = None,
) -> _Envelope:
    """Top-level pool target (must be picklable by name)."""
    return _enveloped_run(
        spec, plan, job_index, attempt, in_worker=True, obs=obs
    )


def _warm_trace_cache(specs: Sequence[JobSpec]) -> None:
    """Materialize each distinct trace in the parent before forking.

    With the ``fork`` start method the pool's workers inherit the
    parent's populated :func:`~repro.sim.tracecache.shared_trace_cache`
    copy-on-write, so N workers replay traces the parent walked once
    instead of each re-walking the generator.  Under ``spawn``/
    ``forkserver`` nothing is inherited, so the warm-up would be pure
    extra parent work and is skipped.
    """
    if multiprocessing.get_start_method() != "fork":
        return
    from repro.sim.tracecache import shared_trace_cache

    cache = shared_trace_cache()
    seen: set[Tuple[WorkloadSpec, int, str]] = set()
    for spec in specs:
        identity = (spec.workload, spec.seed, spec.input_set)
        if identity in seen:
            continue
        seen.add(identity)
        try:
            cache.get(
                spec.workload.build(), seed=spec.seed, input_set=spec.input_set
            )
        except Exception:
            # Warm-up is best-effort: a spec that cannot build fails
            # again in its worker, where the failure is wrapped and
            # attributed through the one sanctioned error path.
            continue


class _JobRunner:
    """One ``run_jobs`` invocation's execution state.

    Owns the slots (submission-order results), the delivered set (the
    exactly-once ``on_result`` guard — a job that succeeds on a retry
    must not fire twice, even if an abandoned earlier attempt
    straggles in), the checkpoint store, and the retry bookkeeping.
    """

    def __init__(
        self,
        specs: List[JobSpec],
        policy: ExecutionPolicy,
        on_result: Optional[Callable[[int, JobSpec], None]],
        telemetry: Optional[ExecTelemetry] = None,
    ) -> None:
        self.specs = specs
        self.policy = policy
        self.on_result = on_result
        #: Span/tally collector.  A private throwaway one keeps every
        #: narration site unconditional; workers are asked to observe
        #: only when the *caller's* collector requests it.
        self.telemetry = telemetry if telemetry is not None else ExecTelemetry()
        self.worker_obs: Optional[TelemetryConfig] = (
            self.telemetry.config
            if telemetry is not None and self.telemetry.config.enabled
            else None
        )
        #: Worker-lane assignment per in-flight future (Chrome tracks).
        self._lane: Dict["futures.Future", int] = {}
        self.slots: List[Optional[RunResult]] = [None] * len(specs)
        self.delivered: Set[int] = set()
        self.store = (
            CheckpointStore(policy.checkpoint_dir)
            if policy.checkpoint_dir is not None
            else None
        )
        self.plan = policy.fault_plan
        self.retry = policy.retry
        self.timeout = policy.effective_timeout
        #: True once the pool broke and execution degraded to serial.
        self.degraded = False
        #: Timed-out futures whose attempt was already executing when
        #: abandoned — ``cancel()`` cannot stop them, and a genuinely
        #: wedged one must not be waited for at pool shutdown.
        self.abandoned: List["futures.Future"] = []

    # -- delivery ----------------------------------------------------

    def _accept(
        self,
        index: int,
        result: RunResult,
        worker: Optional[WorkerTelemetry] = None,
    ) -> None:
        """Record a finished job: slot, checkpoint, one on_result.

        The delivered-set guard also bounds telemetry delivery: a
        straggling result of an abandoned attempt never merges its
        shipped metrics/events, so observed runs are exactly-once in
        the same sense results are.
        """
        if index in self.delivered:
            return
        self.slots[index] = result
        self.delivered.add(index)
        if worker is not None:
            self.telemetry.deliver_worker(index, worker)
        if self.store is not None:
            from repro.obs.manifest import build_manifest

            self.store.store(
                self.specs[index].checkpoint_key(), build_manifest(result)
            )
            self.telemetry.checkpoint_written(index)
        if self.on_result is not None:
            self.on_result(index, self.specs[index])

    def _verify(self, index: int, envelope: _Envelope) -> RunResult:
        """Replay the manifest digest; reject a corrupted result."""
        from repro.obs.manifest import build_manifest, manifest_digest

        replayed = manifest_digest(build_manifest(envelope.result))
        if replayed != envelope.digest:
            raise ResultIntegrityError(
                f"job {self.specs[index].describe()} returned a result whose "
                f"replayed manifest digest {replayed} does not match the "
                f"digest computed at source {envelope.digest}",
                job=self.specs[index].describe(),
            )
        return envelope.result

    def _restore_from_checkpoints(self) -> None:
        """Fill slots from the checkpoint store before executing."""
        if self.store is None or not self.policy.resume:
            return
        from repro.obs.manifest import result_from_manifest

        for index, spec in enumerate(self.specs):
            record = self.store.load(spec.checkpoint_key())
            if record is None:
                continue
            result = result_from_manifest(record)
            # The key is a content address of the coordinates, but a
            # hand-edited record could still disagree with its name.
            if (
                result.workload != spec.workload.name
                or result.scheme != spec.scheme
                or result.seed != spec.seed
                or result.input_set != spec.input_set
            ):
                from repro.errors import CheckpointError

                raise CheckpointError(
                    f"checkpoint record for {spec.describe()} records a "
                    f"different run ({result.workload}/{result.scheme}/"
                    f"seed={result.seed}/{result.input_set})"
                )
            self.telemetry.resume_hit(index)
            self._accept(index, result)

    def _exhausted(
        self, index: int, attempt: int, cause: BaseException
    ) -> JobRetriesExhaustedError:
        spec = self.specs[index]
        return JobRetriesExhaustedError(
            f"job {spec.describe()} failed on all {attempt} attempt(s); "
            f"last failure: {cause}",
            job=spec.describe(),
            attempts=attempt,
        )

    def _pending_indices(self) -> List[int]:
        return [i for i in range(len(self.specs)) if i not in self.delivered]

    # -- submission faults -------------------------------------------

    def _injected_submit_error(self, index: int, attempt: int) -> bool:
        return (
            self.plan is not None
            and self.plan.fault_for(index, attempt) is FaultKind.SUBMIT_ERROR
        )

    # -- serial execution --------------------------------------------

    def _run_one_serial(self, index: int) -> None:
        """Full attempt loop for one job, in-process."""
        spec = self.specs[index]
        self.telemetry.job_enqueued(index, 1)
        attempt = 0
        # Injected dispatch failures fire once per attempt coordinate;
        # the immediate re-dispatch of the same attempt must clear.
        absorbed_submits: Set[Tuple[int, int]] = set()
        while True:
            attempt += 1
            try:
                fault = (
                    self.plan.fault_for(index, attempt)
                    if self.plan is not None
                    else None
                )
                if fault is not None:
                    self.telemetry.fault_injected(index, attempt, fault)
                if (
                    fault is FaultKind.SUBMIT_ERROR
                    and (index, attempt) not in absorbed_submits
                ):
                    # Transient dispatch failure: retried below without
                    # burning the job's attempt budget (a submission
                    # that never happened is not a failed attempt).
                    absorbed_submits.add((index, attempt))
                    raise _InjectedDispatchError(
                        "injected transient submission failure"
                    )
                self.telemetry.attempt_started(index, attempt, 0)
                if fault is FaultKind.HANG and self.timeout is not None:
                    # Sleeping out a hang in the only process there is
                    # would turn a simulated hang into a real one; the
                    # serial path converts it synchronously.
                    self.telemetry.attempt_abandoned(
                        index, attempt, detail="injected hang"
                    )
                    raise JobTimeoutError(
                        f"job {spec.describe()} exceeded its "
                        f"{self.timeout}s timeout (injected hang)",
                        job=spec.describe(),
                        attempts=attempt,
                    )
                envelope = _enveloped_run(
                    spec, self.plan, index, attempt, in_worker=False,
                    obs=self.worker_obs,
                )
                result = self._verify(index, envelope)
            except _InjectedDispatchError:
                # Dispatch-level transient: does not consume an attempt.
                # Only the injected sentinel is absorbed — a real
                # OSError out of the simulation is a job failure with a
                # bounded attempt budget like any other exception.
                attempt -= 1
                self.telemetry.backoff(index, attempt, self.retry.delay_for(1))
                self.retry.backoff(1)
                continue
            except ParallelExecutionError as exc:
                if isinstance(exc, JobRetriesExhaustedError):
                    raise
                last: BaseException = exc
            except Exception as exc:
                last = exc
            else:
                # Delivery sits outside the try: a failure in the
                # on_result callback must propagate to the caller, not
                # masquerade as a job failure and burn its attempts.
                self.telemetry.attempt_finished(index, attempt, "ok")
                self._accept(index, result, worker=envelope.telemetry)
                return
            self.telemetry.attempt_finished(
                index, attempt, "failed", detail=str(last)
            )
            if attempt >= self.retry.max_attempts:
                raise self._exhausted(index, attempt, last) from last
            self.telemetry.backoff(
                index, attempt, self.retry.delay_for(attempt)
            )
            self.retry.backoff(attempt)

    def _run_serial(self, indices: Sequence[int]) -> None:
        for index in indices:
            self._run_one_serial(index)

    # -- pool execution ----------------------------------------------

    def _submit(
        self, pool: "futures.ProcessPoolExecutor", index: int, attempt: int
    ) -> "futures.Future":
        """Submit one attempt, absorbing transient submission errors."""
        for submit_try in range(1, _SUBMIT_TRIES + 1):
            try:
                if submit_try == 1 and self._injected_submit_error(
                    index, attempt
                ):
                    raise OSError("injected transient submission failure")
                return pool.submit(
                    _pool_entry,
                    self.specs[index],
                    self.plan,
                    index,
                    attempt,
                    self.worker_obs,
                )
            except futures.BrokenExecutor:
                raise
            except OSError as exc:
                if submit_try >= _SUBMIT_TRIES:
                    raise ParallelExecutionError(
                        f"could not submit job "
                        f"{self.specs[index].describe()} after "
                        f"{_SUBMIT_TRIES} tries: {exc}",
                        job=self.specs[index].describe(),
                        attempts=attempt,
                    ) from exc
                self.retry.backoff(submit_try)
        raise AssertionError("unreachable")

    def _run_pool(self) -> None:
        """Pool execution with per-job retries, timeouts and integrity.

        Attempts wait in a parent-side ``queue`` and are submitted to
        the executor only while a worker slot is free (workers wedged
        on abandoned attempts count as occupied), so a submitted
        attempt starts executing immediately and its wall-clock
        deadline — armed at submission — is a budget on the attempt
        itself.  A job queued behind busy workers accrues nothing
        while it waits for a slot.

        ``pending`` maps each in-flight future to its job index,
        attempt number and deadline.  Abandoned (timed-out) futures
        are dropped from ``pending`` and never consulted again; their
        workers finish the stale attempt eventually and the
        exactly-once guard in :meth:`_accept` discards whatever they
        produce.  If such a worker is still wedged when the job loop
        finishes, the pool is released without waiting for it —
        ``cancel()`` cannot stop a running attempt, and blocking
        ``run_jobs`` on a hung process would re-create the very
        failure the timeout recovered from.  (A *permanently* hung
        worker is only detached, not killed: it still occupies its
        slot until it dies, and if every worker wedges permanently the
        remaining jobs can never be scheduled — finite hangs recover,
        permanent ones are documented as unrecoverable.)
        """
        indices = self._pending_indices()
        if not indices:
            return
        _warm_trace_cache([self.specs[i] for i in indices])
        attempts: Dict[int, int] = {i: 1 for i in indices}
        queue: Deque[Tuple[int, int]] = collections.deque(
            (index, 1) for index in indices
        )
        for index in indices:
            self.telemetry.job_enqueued(index, 1)
        pool = futures.ProcessPoolExecutor(max_workers=self.policy.jobs)
        try:
            try:
                pending: Dict[
                    "futures.Future", Tuple[int, int, Optional[float]]
                ] = {}
                try:
                    self._fill(pool, pending, queue)
                    while pending or queue:
                        if not pending:
                            # Every worker is wedged on an abandoned
                            # attempt; the only way forward is one of
                            # them finishing its stale work.
                            self._await_wedged()
                            self._fill(pool, pending, queue)
                            continue
                        done = self._wait(pending)
                        for future in done:
                            index, attempt, _ = pending.pop(future)
                            self._handle_completed(
                                queue, attempts, future, index, attempt
                            )
                        self._expire_deadlines(pending, queue, attempts)
                        self._fill(pool, pending, queue)
                except futures.BrokenExecutor:
                    raise
                except BaseException:
                    for future in pending:
                        future.cancel()
                    raise
            finally:
                # Wait only if no abandoned attempt is still running in
                # a worker; a wedged worker would block shutdown(True)
                # forever and run_jobs with it.
                wedged = any(
                    not future.done() for future in self.abandoned
                )
                pool.shutdown(wait=not wedged, cancel_futures=True)
        except futures.BrokenExecutor:
            # The pool died under us (worker killed hard, fork bomb,
            # OOM...).  The experiment is still perfectly computable —
            # degrade to serial in-process execution of whatever has
            # not finished yet.
            self.degraded = True
            self.telemetry.degraded()
            self._run_serial(self._pending_indices())

    def _capacity(self, pending: Dict) -> int:
        """Free worker slots: pool width minus in-flight and wedged."""
        wedged = sum(1 for future in self.abandoned if not future.done())
        return self.policy.jobs - len(pending) - wedged

    def _free_lane(self, pending: Dict) -> int:
        """Lowest worker lane not occupied by an in-flight or wedged attempt.

        Lanes are a parent-side fiction for the Chrome trace (one track
        per concurrently-occupied slot, not per OS process), but they
        obey the same occupancy rule as :meth:`_capacity`: a worker
        wedged on an abandoned attempt keeps its lane until it finishes.
        """
        occupied = {
            self._lane[future] for future in pending if future in self._lane
        }
        occupied.update(
            self._lane[future]
            for future in self.abandoned
            if not future.done() and future in self._lane
        )
        lane = 0
        while lane in occupied:
            lane += 1
        return lane

    def _fill(
        self,
        pool: "futures.ProcessPoolExecutor",
        pending: Dict["futures.Future", Tuple[int, int, Optional[float]]],
        queue: Deque[Tuple[int, int]],
    ) -> None:
        """Submit queued attempts while worker slots are free."""
        while queue and self._capacity(pending) > 0:
            index, attempt = queue.popleft()
            fault = (
                self.plan.fault_for(index, attempt)
                if self.plan is not None
                else None
            )
            if fault is not None:
                self.telemetry.fault_injected(index, attempt, fault)
            future = self._submit(pool, index, attempt)
            self._lane[future] = lane = self._free_lane(pending)
            self.telemetry.attempt_started(index, attempt, lane)
            pending[future] = (index, attempt, self._deadline())

    def _deadline(self) -> Optional[float]:
        return (
            time.monotonic() + self.timeout
            if self.timeout is not None
            else None
        )

    def _await_wedged(self) -> None:
        """Block until a worker wedged on an abandoned attempt frees up.

        Reached only when every slot is lost to abandoned attempts and
        jobs are still queued.  A finite hang ends here; a permanent
        hang on every worker cannot be recovered from (there is nowhere
        left to run anything) and blocks until the process dies.
        """
        stuck = [future for future in self.abandoned if not future.done()]
        futures.wait(stuck, return_when=futures.FIRST_COMPLETED)

    def _wait(
        self, pending: Dict["futures.Future", Tuple[int, int, Optional[float]]]
    ) -> List["futures.Future"]:
        """Wait for at least one completion or the nearest deadline."""
        wait_s: Optional[float] = None
        if self.timeout is not None:
            nearest = min(deadline for _, _, deadline in pending.values())
            wait_s = max(0.0, nearest - time.monotonic())
        done, _ = futures.wait(
            set(pending),
            timeout=wait_s,
            return_when=futures.FIRST_COMPLETED,
        )
        return list(done)

    def _handle_completed(
        self,
        queue: Deque[Tuple[int, int]],
        attempts: Dict[int, int],
        future: "futures.Future",
        index: int,
        attempt: int,
    ) -> None:
        spec = self.specs[index]
        try:
            envelope = future.result()
            result = self._verify(index, envelope)
        except futures.BrokenExecutor:
            raise
        except ResultIntegrityError as exc:
            last: BaseException = exc
        except Exception as exc:
            last = ParallelExecutionError(
                f"job {spec.describe()} failed in a worker: {exc}",
                job=spec.describe(),
                attempts=attempt,
            )
            last.__cause__ = exc
        else:
            # Delivery sits outside the try: an on_result failure must
            # propagate, not be wrapped as a worker failure and retried
            # (the job itself already succeeded).
            self.telemetry.attempt_finished(index, attempt, "ok")
            self._accept(index, result, worker=envelope.telemetry)
            return
        self.telemetry.attempt_finished(
            index, attempt, "failed", detail=str(last)
        )
        self._retry_or_raise(queue, attempts, index, attempt, last)

    def _expire_deadlines(
        self,
        pending: Dict["futures.Future", Tuple[int, int, Optional[float]]],
        queue: Deque[Tuple[int, int]],
        attempts: Dict[int, int],
    ) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        expired = [
            (future, index, attempt)
            for future, (index, attempt, deadline) in pending.items()
            if deadline is not None and deadline <= now
        ]
        for future, index, attempt in expired:
            if not future.cancel():
                # Already executing: the worker cannot be stopped, only
                # abandoned.  Remember the future so its slot counts as
                # occupied and pool shutdown does not wait on a worker
                # that may be wedged forever.
                self.abandoned.append(future)
            del pending[future]
            self.telemetry.attempt_abandoned(
                index, attempt, detail=f"exceeded {self.timeout}s deadline"
            )
            timeout_error = JobTimeoutError(
                f"job {self.specs[index].describe()} exceeded its "
                f"{self.timeout}s timeout on attempt {attempt}",
                job=self.specs[index].describe(),
                attempts=attempt,
            )
            self._retry_or_raise(queue, attempts, index, attempt, timeout_error)

    def _retry_or_raise(
        self,
        queue: Deque[Tuple[int, int]],
        attempts: Dict[int, int],
        index: int,
        attempt: int,
        cause: BaseException,
    ) -> None:
        if attempt >= self.retry.max_attempts:
            raise self._exhausted(index, attempt, cause) from cause
        self.telemetry.backoff(index, attempt, self.retry.delay_for(attempt))
        self.retry.backoff(attempt)
        next_attempt = attempt + 1
        attempts[index] = next_attempt
        queue.append((index, next_attempt))
        self.telemetry.job_enqueued(index, next_attempt)

    # -- entry point -------------------------------------------------

    def run(self) -> List[RunResult]:
        self.telemetry.begin(self.policy, len(self.specs))
        self._restore_from_checkpoints()
        remaining = self._pending_indices()
        if self.policy.jobs == 1 or len(remaining) <= 1:
            self._run_serial(remaining)
        else:
            self._run_pool()
        assert all(result is not None for result in self.slots)
        return self.slots  # type: ignore[return-value]


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    policy: Optional[ExecutionPolicy] = None,
    jobs: Optional[int] = None,
    on_result: Optional[Callable[[int, JobSpec], None]] = None,
    telemetry: Optional[ExecTelemetry] = None,
) -> List[RunResult]:
    """Run every job under ``policy``; return results in submission order.

    ``policy`` (an :class:`~repro.robust.ExecutionPolicy`) is the
    single execution-configuration path: worker count, retry/backoff,
    per-job timeout, checkpoint/resume, and fault injection.  The
    default policy runs everything serially in-process with no pool at
    all, which is both the fallback and the reference the determinism
    suite compares against.  ``jobs=`` is the deprecated PR-3 spelling
    and maps onto ``ExecutionPolicy(jobs=...)`` with a
    :class:`DeprecationWarning`.

    ``telemetry`` (an :class:`~repro.obs.exec_telemetry.ExecTelemetry`)
    turns the run into an observed one: the runner narrates execution
    spans and tallies into it, and — when its config enables worker
    observation — every job runs under a private metrics registry /
    event ring whose dumps are shipped back and merged
    deterministically.  Results are byte-identical either way
    (passivity); ``None`` keeps workers fully blind.

    ``on_result`` fires **exactly once** per finished job — in
    *completion* order, with the job's submission index — including
    jobs restored from checkpoints (they complete instantly).  A job
    that only succeeds on a retry still fires exactly once; straggling
    results of abandoned timed-out attempts are discarded.

    A job that fails its whole attempt budget raises
    :class:`~repro.errors.JobRetriesExhaustedError` naming it and the
    attempt count; remaining jobs are cancelled where possible
    (results of jobs that already finished are discarded — a sweep
    with a poisoned point has no meaningful partial answer, though
    with checkpointing on, their records survive for a resume).
    """
    policy = resolve_policy(policy, jobs, caller="run_jobs")
    return _JobRunner(list(specs), policy, on_result, telemetry).run()
