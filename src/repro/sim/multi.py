"""Multi-enclave simulation: several applications sharing one EPC.

Section 5.6 of the paper: EPC sharing among processes/VMs keeps the
total EPC size fixed, so "each enclave will receive a smaller portion"
and contention becomes the issue — analogous to sharing a last-level
cache.  The preloading schemes still apply because each enclave
handles its own fault stream independently.

:func:`simulate_shared` runs N workloads concurrently against one
:class:`~repro.enclave.platform.SharedPlatform`:

* each enclave gets a disjoint range of the global page space and its
  own driver, scheme machinery (per-process DFP engine, SIP plan), and
  virtual clock — they model programs on separate cores;
* the EPC frames, the CLOCK hand, the exclusive load channel, and the
  service-thread schedule are shared, which is where the contention
  (cross-enclave eviction, channel waits behind another enclave's
  loads and preload bursts) comes from;
* events are processed globally in start-time order, so the shared
  hardware observes one monotone timeline.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.core.schemes import Scheme, make_scheme
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.enclave.platform import SharedPlatform
from repro.errors import SimulationError
from repro.sim.engine import prepare_sip_plan
from repro.sim.results import RunResult
from repro.workloads.base import Workload

__all__ = ["simulate_shared"]


class _App:
    """One enclave's execution state inside a shared run."""

    def __init__(
        self,
        index: int,
        workload: Workload,
        driver: SgxDriver,
        scheme: Scheme,
        trace: Iterator,
        base_page: int,
    ) -> None:
        self.index = index
        self.workload = workload
        self.driver = driver
        self.scheme = scheme
        self.trace = trace
        self.base_page = base_page
        self.now = 0
        sip = scheme.build_sip()
        self.instrumented = sip.instrumented if sip is not None else None
        self.done = False

    def next_event(self) -> Optional[Tuple[int, int, int]]:
        """Pull the next trace event, or None at end of trace."""
        try:
            return next(self.trace)
        except StopIteration:
            self.done = True
            return None


def simulate_shared(
    workloads: Sequence[Workload],
    config: SimConfig,
    schemes: Sequence[str],
    *,
    seed: int = 0,
    input_set: str = "ref",
    sip_plans: Optional[Sequence[Optional[SipPlan]]] = None,
) -> List[RunResult]:
    """Run several workloads concurrently on one shared EPC.

    ``schemes`` gives one scheme name per workload.  Returns one
    :class:`RunResult` per workload, in input order; each result's
    ``total_cycles`` is that application's own finishing time.
    """
    if not workloads:
        raise SimulationError("simulate_shared needs at least one workload")
    if len(schemes) != len(workloads):
        raise SimulationError(
            f"{len(workloads)} workloads but {len(schemes)} schemes"
        )
    if sip_plans is not None and len(sip_plans) != len(workloads):
        raise SimulationError(
            f"{len(workloads)} workloads but {len(sip_plans)} SIP plans"
        )

    platform = SharedPlatform(config)
    apps: List[_App] = []
    base = 0
    for index, (workload, scheme_name) in enumerate(zip(workloads, schemes)):
        plan = sip_plans[index] if sip_plans is not None else None
        if scheme_name in ("sip", "hybrid") and plan is None:
            plan = prepare_sip_plan(workload, config, seed=seed)
        scheme = make_scheme(scheme_name, config, sip_plan=plan)
        enclave = Enclave(
            name=workload.name,
            elrange_pages=workload.elrange_pages,
            pid=index,
            instrumentation_points=(
                plan.instrumentation_points if plan is not None else 0
            ),
            base_page=base,
        )
        driver = SgxDriver(config, enclave, dfp=scheme.build_dfp(), platform=platform)
        apps.append(
            _App(
                index,
                workload,
                driver,
                scheme,
                iter(workload.trace(seed=seed, input_set=input_set)),
                base,
            )
        )
        base += workload.elrange_pages

    # Global event loop: a heap of (start_time, app_index) where
    # start_time = the app's clock after its next compute interval.
    heap: List[Tuple[int, int, Tuple[int, int, int]]] = []
    for app in apps:
        event = app.next_event()
        if event is not None:
            instr, page, cycles = event
            heapq.heappush(heap, (app.now + cycles, app.index, event))

    while heap:
        start, index, (instr, page, cycles) = heapq.heappop(heap)
        app = apps[index]
        app.driver.stats.time.compute += cycles
        app.now = start
        global_page = page + app.base_page
        if app.instrumented is not None and instr in app.instrumented:
            app.now = app.driver.sip_prefetch(global_page, app.now)
        app.now = app.driver.access(global_page, app.now)
        event = app.next_event()
        if event is not None:
            _i, _p, next_cycles = event
            heapq.heappush(heap, (app.now + next_cycles, app.index, event))

    results: List[RunResult] = []
    end = max(app.now for app in apps)
    for app in apps:
        app.driver.finish(end)
        stats = app.driver.stats
        if stats.time.total != app.now:
            raise SimulationError(
                f"time accounting mismatch for {app.workload.name}: "
                f"buckets sum to {stats.time.total}, clock reads {app.now}"
            )
        if app.driver.sanitizer is not None:
            app.driver.sanitizer.check_final(stats, app.now)
        results.append(
            RunResult(
                workload=app.workload.name,
                scheme=app.scheme.name,
                input_set=input_set,
                seed=seed,
                total_cycles=app.now,
                stats=stats,
                config=config,
                sip_points=app.driver.enclave.instrumentation_points,
            )
        )
    return results
