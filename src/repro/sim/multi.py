"""Legacy multi-enclave entry point (deprecated shim).

:func:`simulate_shared` was the original §5.6 shared-EPC driver: N
workloads started together on one :class:`~repro.enclave.platform.
SharedPlatform`, one global CLOCK over the shared frames, no churn.
The fleet simulator (:mod:`repro.sim.fleet`) subsumes it — a shared
run is exactly a :class:`~repro.sim.fleet.FleetScenario` whose tenants
all arrive at cycle zero under the ``"shared-clock"`` policy, with no
admission cap, no spin-up traffic, and closed-loop traces.

This module keeps the old signature as a thin shim over the typed
:class:`~repro.sim.fleet.TenantSpec` API and emits a
:class:`DeprecationWarning`; results are byte-identical to what the
old loop produced.  New code should build a
:class:`~repro.sim.fleet.FleetScenario` directly.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.errors import SimulationError
from repro.sim.results import RunResult
from repro.workloads.base import Workload

__all__ = ["simulate_shared"]


def simulate_shared(
    workloads: Sequence[Workload],
    config: SimConfig,
    schemes: Sequence[str],
    *,
    seed: int = 0,
    input_set: str = "ref",
    sip_plans: Optional[Sequence[Optional[SipPlan]]] = None,
) -> List[RunResult]:
    """Run several workloads concurrently on one shared EPC.

    .. deprecated::
        Build a :class:`~repro.sim.fleet.FleetScenario` and call
        :func:`~repro.sim.fleet.simulate_fleet` instead.  This shim
        maps the old arguments onto the typed API (every workload
        becomes a :class:`~repro.sim.fleet.TenantSpec` arriving at
        cycle zero under the ``"shared-clock"`` policy) and returns
        the same per-workload results the old loop produced.
    """
    from repro.sim.fleet import FleetScenario, TenantSpec, simulate_fleet

    warnings.warn(
        "simulate_shared is deprecated; build a FleetScenario of "
        "TenantSpec entries and call repro.sim.fleet.simulate_fleet",
        DeprecationWarning,
        stacklevel=2,
    )
    if not workloads:
        raise SimulationError("simulate_shared needs at least one workload")
    if len(schemes) != len(workloads):
        raise SimulationError(
            f"{len(workloads)} workloads but {len(schemes)} schemes"
        )
    if sip_plans is not None and len(sip_plans) != len(workloads):
        raise SimulationError(
            f"{len(workloads)} workloads but {len(sip_plans)} SIP plans"
        )
    tenants = tuple(
        TenantSpec(
            workload=workload,
            scheme=scheme,
            sip_plan=sip_plans[index] if sip_plans is not None else None,
        )
        for index, (workload, scheme) in enumerate(zip(workloads, schemes))
    )
    scenario = FleetScenario(
        name="legacy-shared",
        tenants=tenants,
        policy="shared-clock",
        seed=seed,
        input_set=input_set,
        config=config,
    )
    return simulate_fleet(scenario).results
