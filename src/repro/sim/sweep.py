"""Parameter sweeps and scheme comparisons.

These are the experiment drivers: every figure of the evaluation is
either a scheme comparison over workloads (Figures 8, 10–13) or a
sweep of one configuration parameter (Figure 6: ``stream_list``
length; Figure 7: ``LOADLENGTH``; Figure 9: the SIP threshold).

Both drivers take ``policy=`` — an
:class:`~repro.robust.ExecutionPolicy` — and route their independent
simulations through :func:`repro.sim.parallel.run_jobs` whenever the
policy asks for anything beyond plain serial execution: worker
processes, retries, per-job timeouts, checkpoint/resume, or fault
injection.  The default policy is the serial in-process path, and the
legacy ``jobs=`` kwarg still works behind a
:class:`DeprecationWarning`.  Two caches keep the hot path from
repeating work the determinism contract makes repeatable:

* traces are materialized once per ``(workload, seed, input_set)`` and
  replayed for every scheme (:mod:`repro.sim.tracecache`);
* SIP plans are compile-time artifacts — one binary serves every run
  in the paper — so profiling runs are memoized per trace identity
  ``(workload, footprint, seed)`` and plan compilation per profile +
  threshold.  A Figure 6/7 sweep profiles once for all points and a
  Figure 9 threshold sweep re-decides instrumentation from one shared
  profile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan, build_sip_plan
from repro.core.profiler import WorkloadProfile, profile_workload
from repro.errors import ConfigError
from repro.obs.exec_telemetry import ExecTelemetry
from repro.robust import ExecutionPolicy, resolve_policy
from repro.sim.engine import simulate
from repro.sim.parallel import JobSpec, WorkloadSpec, run_jobs
from repro.sim.results import RunResult
from repro.sim.tracecache import shared_trace_cache
from repro.workloads.base import Workload

__all__ = [
    "compare_schemes",
    "sweep_config",
    "SweepPoint",
    "SweepProgress",
    "SIP_SCHEMES",
]

#: Scheme names that execute under a compiled SIP plan.
SIP_SCHEMES = ("sip", "hybrid")

#: Progress-math guard: a sweep point that completes faster than the
#: clock's resolution must not extrapolate a zero ETA for the points
#: still to run.
_MIN_ELAPSED_S = 1e-9


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of a sweep, delivered after each point.

    ``elapsed_s``/``eta_s`` are wall-clock (the only wall-clock in the
    simulator — progress reporting is about the operator's time, not
    virtual cycles).  ``eta_s`` extrapolates linearly from the points
    done so far.
    """

    completed: int
    total: int
    label: object
    elapsed_s: float
    eta_s: float
    #: Fleet-health tallies so far (cumulative across the sweep) —
    #: populated when execution routes through the job runner, zero on
    #: the plain serial path where none of them can occur.
    retries: int = 0
    timeouts: int = 0
    faults: int = 0

    @classmethod
    def tick(
        cls,
        *,
        completed: int,
        total: int,
        label: object,
        elapsed_s: float,
        retries: int = 0,
        timeouts: int = 0,
        faults: int = 0,
    ) -> "SweepProgress":
        """Build a tick, deriving the ETA with the zero-duration guard.

        A first point finishing within the clock's resolution would
        otherwise extrapolate ``eta_s == 0.0`` with the whole sweep
        still ahead; clamping ``elapsed_s`` keeps the estimate a tiny
        positive number instead of a lie, and a tick with nothing
        completed yet reports the only honest estimate: none.
        """
        if completed <= 0:
            eta = float("inf") if total else 0.0
        elif completed >= total:
            eta = 0.0
        else:
            eta = max(elapsed_s, _MIN_ELAPSED_S) / completed * (total - completed)
        return cls(
            completed=completed,
            total=total,
            label=label,
            elapsed_s=elapsed_s,
            eta_s=eta,
            retries=retries,
            timeouts=timeouts,
            faults=faults,
        )

    @property
    def fraction(self) -> float:
        """Completed share of the sweep, in [0, 1]."""
        return self.completed / self.total if self.total else 1.0

    def render(self) -> str:
        """One-line human-readable progress report.

        A healthy fleet renders exactly as before PR 5; the health
        segment appears only once something went wrong, so the common
        case stays scannable.
        """
        line = (
            f"[{self.completed}/{self.total}] {self.label} done "
            f"({self.fraction:.0%}, {self.elapsed_s:.1f}s elapsed, "
            f"~{self.eta_s:.1f}s left)"
        )
        if self.retries or self.timeouts or self.faults:
            line += (
                f" [health: {self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
                f"{self.timeouts} timeout(s), {self.faults} fault(s)]"
            )
        return line


class SweepPoint:
    """One point of a parameter sweep: the value and its runs."""

    def __init__(self, value: object, results: Dict[str, RunResult]) -> None:
        self.value = value
        self.results = results

    def __repr__(self) -> str:
        names = ", ".join(self.results)
        return f"SweepPoint(value={self.value!r}, runs=[{names}])"


#: What the drivers accept as "the workload": a live object (serial
#: only), a picklable registry spec, or a zero-argument factory.
WorkloadSource = Union[Workload, WorkloadSpec, Callable[[], Workload]]


def _build_workload(source: WorkloadSource) -> Workload:
    """Materialize a live workload from any accepted source form."""
    if isinstance(source, Workload):
        return source
    if isinstance(source, WorkloadSpec):
        return source.build()
    return source()


def _require_spec(source: WorkloadSource, caller: str) -> WorkloadSpec:
    """The :class:`WorkloadSpec` behind ``source``, or a clear error.

    Parallel execution ships jobs to worker processes, so the workload
    must be a picklable registry recipe — live workloads and closures
    cannot cross the boundary (and silently pickling a stateful
    generator would be worse than refusing).
    """
    if isinstance(source, WorkloadSpec):
        return source
    raise ConfigError(
        f"{caller} with a resilient ExecutionPolicy (worker processes, "
        f"retries, timeouts, checkpointing or fault injection) or with "
        f"execution telemetry needs a repro.sim.parallel.WorkloadSpec "
        f"(registry name + scale) so jobs can be re-run and shipped to "
        f"worker processes; got {type(source).__name__}"
    )


class _SipPlanCache:
    """Two-level memo: profiling runs, then plan compilation.

    A SIP plan is a *compile-time* artifact: one compiled binary
    serves all of the paper's runs, no matter which kernel-side knob
    (LOADLENGTH, ``stream_list`` length, EPC share) an experiment
    varies.  The profile is therefore memoized per trace identity
    ``(workload, footprint, seed)`` — the first point needing a plan
    supplies the profiling environment — and the plan per profile +
    threshold, so a Figure 6/7 sweep profiles and compiles exactly
    once, and a Figure 9 threshold sweep re-runs only the (cheap)
    threshold decision over one shared profiling run.
    """

    def __init__(self) -> None:
        self._profiles: Dict[Tuple, WorkloadProfile] = {}
        self._plans: Dict[Tuple, SipPlan] = {}

    @staticmethod
    def _profile_key(workload: Workload, seed: int) -> Tuple:
        return (workload.name, workload.footprint_pages, seed)

    def plan_for(
        self, workload: Workload, config: SimConfig, seed: int
    ) -> SipPlan:
        """The compiled plan for one sweep point's SIP coordinates."""
        profile_key = self._profile_key(workload, seed)
        plan_key = profile_key + (config.sip_threshold,)
        plan = self._plans.get(plan_key)
        if plan is None:
            profile = self._profiles.get(profile_key)
            if profile is None:
                profile = profile_workload(
                    workload, config, input_set="train", seed=seed
                )
                self._profiles[profile_key] = profile
            plan = build_sip_plan(profile, config.sip_threshold)
            self._plans[plan_key] = plan
        return plan


def _needs_sip(schemes: Sequence[str]) -> bool:
    return any(name in SIP_SCHEMES for name in schemes)


def compare_schemes(
    workload: WorkloadSource,
    config: SimConfig,
    schemes: Sequence[str],
    *,
    seed: int = 0,
    input_set: str = "ref",
    sip_plan: Optional[SipPlan] = None,
    policy: Optional[ExecutionPolicy] = None,
    jobs: Optional[int] = None,
    telemetry: Optional[ExecTelemetry] = None,
) -> Dict[str, RunResult]:
    """Run the workload under each scheme; return results by name.

    A single SIP plan is compiled once (from the train input) and
    shared across the SIP-bearing schemes, exactly as one compiled
    binary serves all the paper's runs; schemes without SIP never
    touch the profiler.  The workload trace is materialized once and
    replayed per scheme.

    ``policy`` (:class:`~repro.robust.ExecutionPolicy`) is the single
    execution-configuration path: when it asks for anything beyond
    plain serial execution — worker processes, retries, timeouts,
    checkpointing, fault injection — the schemes route through the
    resilient job runner (``workload`` must then be a
    :class:`~repro.sim.parallel.WorkloadSpec`); results are identical
    to the serial path.  ``jobs=`` is the deprecated PR-3 spelling.

    ``telemetry`` (an :class:`~repro.obs.exec_telemetry.ExecTelemetry`)
    makes the comparison an observed one: execution routes through the
    runner even under the default serial policy, the runner narrates
    its schedule into the collector, and — when the collector's config
    enables it — each scheme's run ships its metric/trace dumps back
    for deterministic merging.  Results are unchanged (passivity).
    """
    resolved = resolve_policy(policy, jobs, caller="compare_schemes")
    if resolved.is_resilient or telemetry is not None:
        spec = _require_spec(workload, "compare_schemes")
        if _needs_sip(schemes) and sip_plan is None:
            built = spec.build()
            sip_plan = _SipPlanCache().plan_for(built, config, seed)
        specs = [
            JobSpec(
                workload=spec,
                config=config,
                scheme=name,
                seed=seed,
                input_set=input_set,
                sip_plan=sip_plan if name in SIP_SCHEMES else None,
            )
            for name in schemes
        ]
        runs = run_jobs(specs, policy=resolved, telemetry=telemetry)
        return dict(zip(schemes, runs))

    built = _build_workload(workload)
    if _needs_sip(schemes) and sip_plan is None:
        sip_plan = _SipPlanCache().plan_for(built, config, seed)
    trace = shared_trace_cache().get(built, seed=seed, input_set=input_set)
    results: Dict[str, RunResult] = {}
    for name in schemes:
        results[name] = simulate(
            built,
            config,
            name,
            seed=seed,
            input_set=input_set,
            sip_plan=sip_plan if name in SIP_SCHEMES else None,
            trace=trace,
        )
    return results


def sweep_config(
    workload_factory: WorkloadSource,
    configs: Iterable[SimConfig],
    schemes: Sequence[str],
    *,
    values: Optional[Sequence[object]] = None,
    seed: int = 0,
    input_set: str = "ref",
    progress: Optional[Callable[[SweepProgress], None]] = None,
    policy: Optional[ExecutionPolicy] = None,
    jobs: Optional[int] = None,
    telemetry: Optional[ExecTelemetry] = None,
) -> List[SweepPoint]:
    """Run a scheme comparison at each configuration.

    ``values`` labels the sweep points (defaults to their index).  The
    workload is rebuilt per point via ``workload_factory`` so traces
    never share generator state (a :class:`~repro.sim.parallel.WorkloadSpec`
    serves as the factory, and is required whenever the policy is
    resilient).

    SIP plans are compiled here, once per (workload, seed, threshold),
    and shared by every point whose coordinates match — a sweep that
    varies a non-SIP parameter profiles exactly once, and a sweep
    whose schemes carry no SIP at all never touches the profiler.

    ``policy`` (:class:`~repro.robust.ExecutionPolicy`) configures
    execution: worker count, retry/timeout, checkpoint/resume (each
    completed run is persisted and skipped on a ``resume=True``
    restart), and fault injection.  ``jobs=`` is the deprecated PR-3
    spelling.

    ``progress`` is called after each completed point with a
    :class:`SweepProgress` tick (sweeps are the slow path — minutes at
    paper scale — so the CLI surfaces an ETA through this hook); the
    ``policy.progress`` callback serves the same role when the kwarg
    is not given.  Under parallel execution ticks fire as points
    complete, which may be out of label order; on a resumed sweep,
    checkpoint-restored points tick instantly.  Ticks of a
    runner-routed sweep carry the cumulative retry/timeout/fault
    tallies so a progress line shows fleet health, not just ETA.

    ``telemetry`` (an :class:`~repro.obs.exec_telemetry.ExecTelemetry`)
    makes this an observed sweep: execution routes through the runner
    even under the default serial policy and the collector accumulates
    execution spans, tallies, and (when its config enables it) each
    job's shipped metric/trace dumps.  Results are unchanged.
    """
    resolved = resolve_policy(policy, jobs, caller="sweep_config")
    report = progress if progress is not None else resolved.progress
    config_list = list(configs)
    if values is None:
        labels: List[object] = list(range(len(config_list)))
    else:
        labels = list(values)
    if len(labels) != len(config_list):
        raise ConfigError(
            f"{len(config_list)} configs but {len(labels)} labels"
        )
    needs_sip = _needs_sip(schemes)
    plan_cache = _SipPlanCache() if needs_sip else None
    total = len(config_list)
    started = time.monotonic()

    def point_plan(workload: Workload, config: SimConfig) -> Optional[SipPlan]:
        if plan_cache is None:
            return None
        return plan_cache.plan_for(workload, config, seed)

    if resolved.is_resilient or telemetry is not None:
        spec = _require_spec(workload_factory, "sweep_config")
        # Health counts ride the progress ticks even when the caller
        # did not ask for telemetry: a private collector costs nothing
        # and keeps the progress line honest about retries/faults.
        collector = (
            telemetry
            if telemetry is not None
            else (ExecTelemetry() if report is not None else None)
        )
        plan_probe = spec.build() if needs_sip else None
        specs: List[JobSpec] = []
        for config in config_list:
            plan = point_plan(plan_probe, config) if plan_probe is not None else None
            for name in schemes:
                specs.append(
                    JobSpec(
                        workload=spec,
                        config=config,
                        scheme=name,
                        seed=seed,
                        input_set=input_set,
                        sip_plan=plan if name in SIP_SCHEMES else None,
                    )
                )
        per_point = len(schemes)
        remaining = [per_point] * total
        points_done = 0

        def on_result(index: int, _spec: JobSpec) -> None:
            nonlocal points_done
            point = index // per_point
            remaining[point] -= 1
            if remaining[point] == 0 and report is not None:
                points_done += 1
                retries, timeouts, faults = (
                    collector.health_counts()
                    if collector is not None
                    else (0, 0, 0)
                )
                report(
                    SweepProgress.tick(
                        completed=points_done,
                        total=total,
                        label=labels[point],
                        elapsed_s=time.monotonic() - started,
                        retries=retries,
                        timeouts=timeouts,
                        faults=faults,
                    )
                )

        runs = run_jobs(
            specs, policy=resolved, on_result=on_result, telemetry=collector
        )
        points: List[SweepPoint] = []
        for point_index, label in enumerate(labels):
            base = point_index * per_point
            points.append(
                SweepPoint(
                    label,
                    dict(zip(schemes, runs[base : base + per_point])),
                )
            )
        return points

    points = []
    for label, config in zip(labels, config_list):
        workload = _build_workload(workload_factory)
        results = compare_schemes(
            workload,
            config,
            schemes,
            seed=seed,
            input_set=input_set,
            sip_plan=point_plan(workload, config),
        )
        points.append(SweepPoint(label, results))
        if report is not None:
            report(
                SweepProgress.tick(
                    completed=len(points),
                    total=total,
                    label=label,
                    elapsed_s=time.monotonic() - started,
                )
            )
    return points
