"""Parameter sweeps and scheme comparisons.

These are the experiment drivers: every figure of the evaluation is
either a scheme comparison over workloads (Figures 8, 10–13) or a
sweep of one configuration parameter (Figure 6: ``stream_list``
length; Figure 7: ``LOADLENGTH``; Figure 9: the SIP threshold).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.errors import ConfigError
from repro.sim.engine import prepare_sip_plan, simulate
from repro.sim.results import RunResult
from repro.workloads.base import Workload

__all__ = ["compare_schemes", "sweep_config", "SweepPoint", "SweepProgress"]


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of a sweep, delivered after each point.

    ``elapsed_s``/``eta_s`` are wall-clock (the only wall-clock in the
    simulator — progress reporting is about the operator's time, not
    virtual cycles).  ``eta_s`` extrapolates linearly from the points
    done so far.
    """

    completed: int
    total: int
    label: object
    elapsed_s: float
    eta_s: float

    @property
    def fraction(self) -> float:
        """Completed share of the sweep, in [0, 1]."""
        return self.completed / self.total if self.total else 1.0

    def render(self) -> str:
        """One-line human-readable progress report."""
        return (
            f"[{self.completed}/{self.total}] {self.label} done "
            f"({self.fraction:.0%}, {self.elapsed_s:.1f}s elapsed, "
            f"~{self.eta_s:.1f}s left)"
        )


class SweepPoint:
    """One point of a parameter sweep: the value and its runs."""

    def __init__(self, value: object, results: Dict[str, RunResult]) -> None:
        self.value = value
        self.results = results

    def __repr__(self) -> str:
        names = ", ".join(self.results)
        return f"SweepPoint(value={self.value!r}, runs=[{names}])"


def compare_schemes(
    workload: Workload,
    config: SimConfig,
    schemes: Sequence[str],
    *,
    seed: int = 0,
    input_set: str = "ref",
    sip_plan: Optional[SipPlan] = None,
) -> Dict[str, RunResult]:
    """Run ``workload`` under each scheme; return results by name.

    A single SIP plan is compiled once (from the train input) and
    shared across the SIP-bearing schemes, exactly as one compiled
    binary serves all the paper's runs.
    """
    needs_sip = any(name in ("sip", "hybrid") for name in schemes)
    if needs_sip and sip_plan is None:
        sip_plan = prepare_sip_plan(workload, config, seed=seed)
    results: Dict[str, RunResult] = {}
    for name in schemes:
        results[name] = simulate(
            workload,
            config,
            name,
            seed=seed,
            input_set=input_set,
            sip_plan=sip_plan if name in ("sip", "hybrid") else None,
        )
    return results


def sweep_config(
    workload_factory: Callable[[], Workload],
    configs: Iterable[SimConfig],
    schemes: Sequence[str],
    *,
    values: Optional[Sequence[object]] = None,
    seed: int = 0,
    input_set: str = "ref",
    progress: Optional[Callable[[SweepProgress], None]] = None,
) -> List[SweepPoint]:
    """Run a scheme comparison at each configuration.

    ``values`` labels the sweep points (defaults to their index).  The
    workload is rebuilt per point via ``workload_factory`` so traces
    never share generator state.  ``progress`` is called once after
    each completed point with a :class:`SweepProgress` tick (sweeps are
    the slow path — minutes at paper scale — so the CLI surfaces an
    ETA through this hook).
    """
    config_list = list(configs)
    if values is None:
        labels: List[object] = list(range(len(config_list)))
    else:
        labels = list(values)
    if len(labels) != len(config_list):
        raise ConfigError(
            f"{len(config_list)} configs but {len(labels)} labels"
        )
    points: List[SweepPoint] = []
    started = time.monotonic()
    total = len(config_list)
    for label, config in zip(labels, config_list):
        workload = workload_factory()
        results = compare_schemes(
            workload, config, schemes, seed=seed, input_set=input_set
        )
        points.append(SweepPoint(label, results))
        if progress is not None:
            elapsed = time.monotonic() - started
            done = len(points)
            eta = elapsed / done * (total - done)
            progress(
                SweepProgress(
                    completed=done,
                    total=total,
                    label=label,
                    elapsed_s=elapsed,
                    eta_s=eta,
                )
            )
    return points
