"""Fleet-scale multi-tenant EPC simulation.

The paper's shared-EPC experiment (§5.6) runs a handful of workloads
started together and left alone.  A real SGX host looks different:
tens to hundreds of tenants arrive and depart over time, an admission
controller bounds how many run at once, each enclave pays a spin-up
cost (its initial pages stream through the same exclusive load channel
every demand fault uses), and server tenants are driven by *open-loop*
request streams rather than a free-running trace.  This module grows
the §5.6 setup into that fleet:

* :class:`TenantSpec` — one tenant: workload, scheme, arrival time,
  optional open-loop request profile
  (:class:`~repro.workloads.requests.RequestProfile`);
* :class:`FleetScenario` — the whole experiment: tenants, EPC frame
  policy, EPC size, duration, admission cap, spin-up cost, seed;
* :func:`simulate_fleet` — the deterministic event loop; returns a
  :class:`FleetResult` with one :class:`~repro.sim.results.RunResult`
  per tenant plus per-tenant QoS (p50/p99 demand-fault latency and
  channel wait, request queueing lag) computed from the driver's cycle
  histograms (:mod:`repro.obs.metrics`);
* :data:`SCENARIOS` / :func:`build_scenario` — named, reproducible
  scenarios for the ``repro fleet`` CLI.

Three EPC frame policies are pluggable via ``FleetScenario.policy``:

* ``"shared-clock"`` — the paper's behaviour: one global CLOCK hand
  over the whole frame pool (``platform.frames is None``);
* ``"static-partition"`` — every admitted tenant gets an equal private
  slice (:class:`~repro.enclave.platform.StaticPartitionFrames`);
* ``"adaptive-quota"`` — slices resized on a fixed virtual-time period
  from live per-tenant fault counts
  (:class:`~repro.enclave.platform.AdaptiveQuotaFrames`).

Determinism: the global event heap is keyed ``(time, rank, tenant
index)`` — rank 0 for control events (adaptive rebalance ticks, then
arrivals), rank 1 for trace events — so simultaneous events always
process in the same order and a scenario's manifest is byte-identical
across runs at the same seed.  Tenant time spent *outside* the enclave
(waiting for admission, spin-up, open-loop request gaps) is charged to
the ``idle`` bucket of :class:`~repro.enclave.stats.TimeBreakdown`, so
the ``time.total == clock`` identity every solo run is checked against
holds for every tenant here too.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.core.schemes import SCHEME_NAMES, make_scheme
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.enclave.loader import LoadKind
from repro.enclave.platform import (
    AdaptiveQuotaFrames,
    FrameManager,
    SharedPlatform,
    StaticPartitionFrames,
)
from repro.errors import ConfigError, SimulationError
from repro.obs.fleet_telemetry import FleetTelemetry
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)
from repro.sim.engine import prepare_sip_plan
from repro.sim.results import RunResult
from repro.workloads.base import SyntheticWorkload, Workload
from repro.workloads.registry import build_workload
from repro.workloads.requests import RequestProfile, memcached_profile, request_gaps
from repro.workloads.synthetic import sequential, uniform_random, zipf_random

__all__ = [
    "EPC_POLICIES",
    "FLEET_MANIFEST_SCHEMA",
    "FleetResult",
    "FleetScenario",
    "SCENARIO_NAMES",
    "TenantRecord",
    "TenantSpec",
    "build_scenario",
    "simulate_fleet",
]

#: Schema tag of the fleet block embedded in the aggregate manifest.
FLEET_MANIFEST_SCHEMA = "repro.fleet-manifest/1"

#: Pluggable EPC frame policies (see the module docstring).
EPC_POLICIES = ("shared-clock", "static-partition", "adaptive-quota")

# Heap ranks: control events (arrival/admission, adaptive rebalance
# ticks) run before trace events that share their timestamp — a tenant
# cannot touch a page in the same instant it is still being admitted,
# and a quota resize dated t must be visible to every access at t.
_RANK_CONTROL = 0
_RANK_TRACE = 1
#: Pseudo tenant index of the adaptive rebalance tick (sorts before
#: every real arrival sharing its timestamp; there is at most one).
_REBALANCE = -1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a fleet scenario.

    * ``workload`` — a :class:`~repro.workloads.base.Workload` or a
      registry name (resolved via ``build_workload(name, scale=...)``);
    * ``scheme`` — preloading scheme name (``baseline``, ``dfp``, ...);
    * ``arrival`` — virtual cycle at which the tenant asks to be
      admitted;
    * ``requests`` — optional open-loop request profile; ``None`` runs
      the trace closed-loop, exactly like the paper's experiments;
    * ``name`` — display/manifest label (defaults to
      ``"<workload>#<index>"``);
    * ``scale`` — registry scale factor when ``workload`` is a name;
    * ``sip_plan`` — pre-compiled SIP plan; auto-profiled for the
      ``sip``/``hybrid`` schemes when absent.
    """

    workload: Union[str, Workload]
    scheme: str = "baseline"
    arrival: int = 0
    requests: Optional[RequestProfile] = None
    name: Optional[str] = None
    scale: int = 1
    sip_plan: Optional[SipPlan] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEME_NAMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r} "
                f"(choose from {', '.join(SCHEME_NAMES)})"
            )
        if self.arrival < 0:
            raise ConfigError(f"arrival must be >= 0, got {self.arrival}")
        if self.scale < 1:
            raise ConfigError(f"scale must be >= 1, got {self.scale}")


@dataclass(frozen=True)
class FleetScenario:
    """A complete, reproducible fleet experiment.

    * ``policy`` — one of :data:`EPC_POLICIES`;
    * ``epc_pages`` — overrides ``config.epc_pages`` when set;
    * ``duration`` — hard virtual-cycle cutoff; events past it never
      run and still-running tenants are reported as truncated;
    * ``max_admitted`` — admission-control slot count (``None`` admits
      everyone immediately); waiting tenants queue FIFO by arrival;
    * ``spinup_pages`` — pages streamed through the load channel at
      admission, modelling enclave build (EADD/EEXTEND) traffic;
    * ``rebalance_period_cycles`` — adaptive-quota resize period
      (required by, and only meaningful for, ``adaptive-quota``);
    * ``min_quota_pages`` — adaptive policy's per-tenant frame floor.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    policy: str = "shared-clock"
    epc_pages: Optional[int] = None
    duration: Optional[int] = None
    seed: int = 0
    input_set: str = "ref"
    config: Optional[SimConfig] = None
    max_admitted: Optional[int] = None
    spinup_pages: int = 0
    rebalance_period_cycles: Optional[int] = None
    min_quota_pages: int = 8

    def __post_init__(self) -> None:
        if self.policy not in EPC_POLICIES:
            raise ConfigError(
                f"unknown EPC policy {self.policy!r} "
                f"(choose from {', '.join(EPC_POLICIES)})"
            )
        if not self.tenants:
            raise ConfigError(f"scenario {self.name!r} has no tenants")
        if self.max_admitted is not None and self.max_admitted < 1:
            raise ConfigError(
                f"max_admitted must be >= 1, got {self.max_admitted}"
            )
        if self.spinup_pages < 0:
            raise ConfigError(
                f"spinup_pages must be >= 0, got {self.spinup_pages}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration}")
        if (
            self.rebalance_period_cycles is not None
            and self.rebalance_period_cycles <= 0
        ):
            raise ConfigError(
                "rebalance_period_cycles must be positive, got "
                f"{self.rebalance_period_cycles}"
            )
        if self.policy == "adaptive-quota" and self.rebalance_period_cycles is None:
            raise ConfigError(
                "policy 'adaptive-quota' requires rebalance_period_cycles"
            )


@dataclass
class TenantRecord:
    """Per-tenant outcome: lifecycle timestamps plus the QoS block."""

    name: str
    index: int
    spec: TenantSpec
    result: RunResult
    admitted: bool = False
    completed: bool = False
    admitted_at: Optional[int] = None
    started_at: Optional[int] = None
    departed_at: Optional[int] = None
    requests_served: int = 0
    #: Deterministic QoS block (the manifest's ``tenants[i]`` entry).
    qos: Dict[str, object] = field(default_factory=dict)


@dataclass
class FleetResult:
    """Outcome of one fleet scenario."""

    scenario: FleetScenario
    config: SimConfig
    results: List[RunResult]
    tenants: List[TenantRecord]
    end_cycles: int
    rebalances: int = 0
    #: The ``repro.fleet-timeseries/1`` block of an observed run
    #: (``None`` for blind runs).  Embedded digest-excluded in the
    #: manifest, so attaching it never changes the run's identity.
    timeseries: Optional[Dict[str, object]] = None

    def fleet_block(self) -> Dict[str, object]:
        """The deterministic ``repro.fleet-manifest/1`` block."""
        scenario = self.scenario
        admitted = [t for t in self.tenants if t.admitted]
        completed = [t for t in self.tenants if t.completed]
        return {
            "schema": FLEET_MANIFEST_SCHEMA,
            "scenario": {
                "name": scenario.name,
                "policy": scenario.policy,
                "seed": scenario.seed,
                "input_set": scenario.input_set,
                "epc_pages": self.config.epc_pages,
                "duration": scenario.duration,
                "tenants": len(scenario.tenants),
                "max_admitted": scenario.max_admitted,
                "spinup_pages": scenario.spinup_pages,
                "rebalance_period_cycles": scenario.rebalance_period_cycles,
            },
            "summary": {
                "end_cycles": self.end_cycles,
                "admitted": len(admitted),
                "completed": len(completed),
                "truncated": len(admitted) - len(completed),
                "never_admitted": len(self.tenants) - len(admitted),
                "rebalances": self.rebalances,
                "faults": sum(r.stats.faults for r in self.results),
                "idle_cycles": sum(r.stats.time.idle for r in self.results),
                "requests_served": sum(t.requests_served for t in self.tenants),
            },
            "tenants": [t.qos for t in self.tenants],
        }

    def manifest(self) -> Dict[str, object]:
        """Aggregate run manifest with the fleet block under ``extra``.

        An observed run additionally embeds the time-series block as
        the top-level ``fleet_timeseries`` section, which the manifest
        digest excludes — so the digest (and every digest-included
        byte) of an observed manifest equals the blind run's.
        """
        from repro.obs.exec_telemetry import build_fleet_manifest

        manifest = build_fleet_manifest(
            self.results,
            labels=[t.name for t in self.tenants],
            extra={"fleet": self.fleet_block()},
        )
        if self.timeseries is not None:
            manifest["fleet_timeseries"] = dict(self.timeseries)
        return manifest


class _Tenant:
    """One tenant's runtime state inside the fleet loop."""

    __slots__ = (
        "index", "spec", "name", "workload", "base_page", "sip_plan",
        "driver", "scheme", "registry", "instrumented", "trace",
        "now", "pending", "pending_idle", "done",
        "gaps", "next_arrival", "events_left", "requests_served", "lag_hist",
        "record",
    )

    def __init__(
        self, index: int, spec: TenantSpec, workload: Workload, base_page: int
    ) -> None:
        self.index = index
        self.spec = spec
        self.name = spec.name if spec.name is not None else f"{workload.name}#{index}"
        self.workload = workload
        self.base_page = base_page
        self.sip_plan: Optional[SipPlan] = None
        self.driver: Optional[SgxDriver] = None
        self.scheme = None
        self.registry: Optional[MetricsRegistry] = None
        self.instrumented = None
        self.trace: Optional[Iterator] = None
        self.now = 0
        self.pending: Optional[Tuple[int, int, int]] = None
        # Outside-the-enclave cycles accumulated since the last event
        # was charged; flushed into ``stats.time.idle`` when the next
        # event pops (or at departure) so the accounting identity holds.
        self.pending_idle = 0
        self.done = False
        self.gaps: Optional[Iterator[int]] = None
        self.next_arrival = 0
        self.events_left = 0
        self.requests_served = 0
        self.lag_hist = Histogram(f"tenant{index}.request_lag")
        self.record: Optional[TenantRecord] = None

    def next_event(self) -> Optional[Tuple[int, int, int]]:
        """Pull the next trace event, or None at end of trace."""
        try:
            return next(self.trace)
        except StopIteration:
            return None

    def schedule(self, heap: List[Tuple[int, int, int]]) -> bool:
        """Queue the tenant's next trace event; False when it is done.

        At an open-loop request boundary the tenant either idles until
        the request's scheduled arrival (charged to ``idle``) or starts
        late — the lag is its queueing delay, recorded per request
        (on-time requests record zero so the histogram covers every
        request, not just the late ones).
        """
        profile = self.spec.requests
        boundary = profile is not None and self.events_left == 0
        if (
            boundary
            and profile.max_requests is not None
            and self.requests_served >= profile.max_requests
        ):
            return False
        event = self.next_event()
        if event is None:
            return False
        if boundary:
            arrival = self.next_arrival
            if arrival > self.now:
                self.pending_idle += arrival - self.now
                self.now = arrival
                self.lag_hist.observe(0)
            else:
                self.lag_hist.observe(self.now - arrival)
            self.next_arrival = arrival + next(self.gaps)
            self.events_left = profile.events_per_request
            self.requests_served += 1
        if profile is not None:
            self.events_left -= 1
        self.pending = event
        heapq.heappush(heap, (self.now + event[2], _RANK_TRACE, self.index))
        return True


def _resolve_workload(spec: TenantSpec) -> Workload:
    if isinstance(spec.workload, Workload):
        return spec.workload
    return build_workload(spec.workload, scale=spec.scale)


def _make_frames(
    scenario: FleetScenario, platform: SharedPlatform
) -> Optional[FrameManager]:
    if scenario.policy == "shared-clock":
        return None
    if scenario.policy == "static-partition":
        return StaticPartitionFrames(platform)
    return AdaptiveQuotaFrames(platform, min_quota=scenario.min_quota_pages)


def simulate_fleet(
    scenario: FleetScenario, *, telemetry: Optional[FleetTelemetry] = None
) -> FleetResult:
    """Run a fleet scenario; returns one result per tenant, in order.

    The loop is a single global event heap keyed ``(time, rank,
    tenant)``: arrivals admit tenants (or queue them behind the
    admission cap), departures hand their slot to the queue head, and
    trace events run the admitted tenants' accesses against the shared
    platform exactly as :mod:`repro.sim.multi` always has.

    ``telemetry`` attaches a :class:`~repro.obs.fleet_telemetry.
    FleetTelemetry` sampler.  This function is the *sole sanctioned
    emitter* of its ``series_*`` hooks (lint rule RL012): every hook
    is a passive read of driver counters and platform state, so an
    observed run's results — and its fleet-manifest bytes — are
    identical to a blind run's.
    """
    config = scenario.config if scenario.config is not None else SimConfig()
    if scenario.epc_pages is not None:
        config = replace(config, epc_pages=scenario.epc_pages)
    seed = scenario.seed
    input_set = scenario.input_set

    platform = SharedPlatform(config)
    frames = _make_frames(scenario, platform)
    platform.frames = frames
    channel = platform.channel
    if telemetry is not None:
        telemetry.series_begin(config, platform, frames)

    tenants: List[_Tenant] = []
    base = 0
    names_seen: Dict[str, int] = {}
    for index, spec in enumerate(scenario.tenants):
        workload = _resolve_workload(spec)
        tenant = _Tenant(index, spec, workload, base)
        if tenant.name in names_seen:
            raise ConfigError(
                f"duplicate tenant name {tenant.name!r} "
                f"(tenants {names_seen[tenant.name]} and {index})"
            )
        names_seen[tenant.name] = index
        if spec.scheme in ("sip", "hybrid") and spec.sip_plan is None:
            tenant.sip_plan = prepare_sip_plan(workload, config, seed=seed)
        else:
            tenant.sip_plan = spec.sip_plan
        tenants.append(tenant)
        base += workload.elrange_pages
        if telemetry is not None:
            telemetry.series_tenant(
                index, tenant.name, spec.scheme, workload.name, spec.arrival
            )

    heap: List[Tuple[int, int, int]] = []
    queue: List[int] = []  # FIFO admission queue of tenant indices
    active = 0
    live = len(tenants)  # tenants not yet departed (or never admitted)
    rebalance_period = (
        scenario.rebalance_period_cycles
        if scenario.policy == "adaptive-quota"
        else None
    )

    def admit(tenant: _Tenant, t: int) -> None:
        nonlocal active
        plan = tenant.sip_plan
        scheme = make_scheme(tenant.spec.scheme, config, sip_plan=plan)
        enclave = Enclave(
            name=tenant.name,
            elrange_pages=tenant.workload.elrange_pages,
            pid=tenant.index,
            instrumentation_points=(
                plan.instrumentation_points if plan is not None else 0
            ),
            base_page=tenant.base_page,
        )
        registry = MetricsRegistry(enabled=True)
        driver = SgxDriver(
            config,
            enclave,
            dfp=scheme.build_dfp(),
            platform=platform,
            metrics=registry,
        )
        tenant.driver = driver
        tenant.scheme = scheme
        tenant.registry = registry
        sip = scheme.build_sip()
        tenant.instrumented = sip.instrumented if sip is not None else None
        if frames is not None:
            frames.on_admit(driver)
        active += 1
        record = tenant.record
        record.admitted = True
        record.admitted_at = t
        if telemetry is not None:
            telemetry.series_admit(tenant.index, t, driver, registry)
        start = t
        spinup = min(scenario.spinup_pages, enclave.elrange_pages)
        if spinup:
            # Enclave build: the initial pages stream through the same
            # exclusive channel as everyone's demand faults, so a big
            # spin-up visibly delays the neighbours.
            platform.poll(start)
            for offset in range(spinup):
                start = channel.load_sync(
                    tenant.base_page + offset, LoadKind.DEMAND, start
                )
        record.started_at = start
        if telemetry is not None:
            telemetry.series_started(tenant.index, start)
        tenant.now = start
        # Everything before the first trace event — pre-arrival time,
        # admission wait, spin-up — is outside-the-enclave idle time.
        tenant.pending_idle = start
        tenant.next_arrival = start
        tenant.trace = iter(tenant.workload.trace(seed=seed, input_set=input_set))
        if tenant.spec.requests is not None:
            tenant.gaps = request_gaps(
                tenant.spec.requests, seed=seed, salt=tenant.index
            )
        if not tenant.schedule(heap):
            depart(tenant, truncated=False)

    def depart(tenant: _Tenant, *, truncated: bool) -> None:
        nonlocal active, live
        tenant.done = True
        tenant.record.completed = not truncated
        tenant.record.departed_at = tenant.now
        if telemetry is not None:
            telemetry.series_depart(
                tenant.index, tenant.now, truncated=truncated
            )
        # Flush residual idle (a tenant can depart without ever running
        # an event) and pin the driver's hardware clock to now.
        tenant.driver.account_idle(tenant.pending_idle, tenant.now)
        tenant.pending_idle = 0
        if frames is not None:
            frames.on_depart(tenant.driver)
        active -= 1
        live -= 1
        while queue and (
            scenario.max_admitted is None or active < scenario.max_admitted
        ):
            admit(tenants[queue.pop(0)], tenant.now)

    for tenant in tenants:
        tenant.record = TenantRecord(
            name=tenant.name,
            index=tenant.index,
            spec=tenant.spec,
            result=None,  # filled in below
        )
        heapq.heappush(heap, (tenant.spec.arrival, _RANK_CONTROL, tenant.index))
    if rebalance_period is not None:
        heapq.heappush(heap, (rebalance_period, _RANK_CONTROL, _REBALANCE))

    truncated_at: Optional[int] = None
    while heap:
        time, rank, index = heapq.heappop(heap)
        if scenario.duration is not None and time > scenario.duration:
            truncated_at = scenario.duration
            break
        if telemetry is not None:
            telemetry.series_tick(time)
        if rank == _RANK_CONTROL:
            if index == _REBALANCE:
                if telemetry is not None:
                    passes = frames.rebalances
                    before = {
                        t.name: frames.quota_of(t.driver)
                        for t in tenants
                        if t.driver is not None
                    }
                    frames.rebalance(time)
                    # A tick with no active tenants re-apportions
                    # nothing and is not counted by the policy; record
                    # only decisions that actually ran.
                    if frames.rebalances != passes:
                        after = {
                            t.name: frames.quota_of(t.driver)
                            for t in tenants
                            if t.driver is not None
                        }
                        telemetry.series_rebalance(time, before, after)
                else:
                    frames.rebalance(time)
                if live > 0:
                    heapq.heappush(
                        heap, (time + rebalance_period, _RANK_CONTROL, _REBALANCE)
                    )
                continue
            tenant = tenants[index]
            if scenario.max_admitted is not None and active >= scenario.max_admitted:
                queue.append(index)
                if telemetry is not None:
                    telemetry.series_queued(index, time)
            else:
                admit(tenant, time)
            continue
        tenant = tenants[index]
        instr, page, cycles = tenant.pending
        driver = tenant.driver
        driver.account_idle(tenant.pending_idle, time)
        tenant.pending_idle = 0
        driver.stats.time.compute += cycles
        tenant.now = time
        global_page = page + tenant.base_page
        if tenant.instrumented is not None and instr in tenant.instrumented:
            tenant.now = driver.sip_prefetch(global_page, tenant.now)
        tenant.now = driver.access(global_page, tenant.now)
        if not tenant.schedule(heap):
            depart(tenant, truncated=False)

    admitted = [t for t in tenants if t.record.admitted]
    end = max((t.now for t in admitted), default=0)
    if truncated_at is not None:
        end = max(end, truncated_at)
    for tenant in admitted:
        if not tenant.done:
            # Duration cutoff: the tenant was still running.  Flush the
            # idle it had accrued toward its never-run next event
            # (admission wait, spin-up, or an open-loop gap) so the
            # time-accounting identity below holds, mirroring depart().
            tenant.record.departed_at = None
            tenant.driver.account_idle(tenant.pending_idle, tenant.now)
            tenant.pending_idle = 0
        tenant.driver.finish(end)
        stats = tenant.driver.stats
        if stats.time.total != tenant.now:
            raise SimulationError(
                f"time accounting mismatch for tenant {tenant.name!r}: "
                f"buckets sum to {stats.time.total}, clock reads {tenant.now}"
            )
        if tenant.driver.sanitizer is not None:
            tenant.driver.sanitizer.check_final(stats, tenant.now)

    if telemetry is not None:
        for tenant in admitted:
            if not tenant.done:
                telemetry.series_truncated(tenant.index)
        telemetry.series_finish(end)

    results: List[RunResult] = []
    for tenant in tenants:
        driver = tenant.driver
        result = RunResult(
            workload=tenant.workload.name,
            scheme=tenant.spec.scheme,
            input_set=input_set,
            seed=seed,
            total_cycles=tenant.now,
            stats=driver.stats if driver is not None else _empty_stats(),
            config=config,
            sip_points=(
                driver.enclave.instrumentation_points if driver is not None else 0
            ),
        )
        tenant.record.result = result
        tenant.record.requests_served = tenant.requests_served
        tenant.record.qos = _tenant_qos(tenant, config, frames)
        results.append(result)

    rebalances = frames.rebalances if isinstance(frames, AdaptiveQuotaFrames) else 0
    return FleetResult(
        scenario=scenario,
        config=config,
        results=results,
        tenants=[t.record for t in tenants],
        end_cycles=end,
        rebalances=rebalances,
        timeseries=telemetry.block() if telemetry is not None else None,
    )


def _empty_stats():
    from repro.enclave.stats import RunStats

    return RunStats()


def _tenant_qos(
    tenant: _Tenant, config: SimConfig, frames: Optional[FrameManager]
) -> Dict[str, object]:
    """Deterministic per-tenant QoS block for the fleet manifest.

    Demand-fault latency percentiles come from the driver's
    ``fault.wait_hist`` cycle histogram: a fault's latency is the AEX
    exit plus its channel wait plus the ERESUME re-entry, and the two
    constants are configuration, so only the wait is distributional.
    """
    record = tenant.record
    spec = tenant.spec
    block: Dict[str, object] = {
        "name": tenant.name,
        "index": tenant.index,
        "workload": tenant.workload.name,
        "scheme": spec.scheme,
        "arrival": spec.arrival,
        "admitted": record.admitted,
        "completed": record.completed,
        "admitted_at": record.admitted_at,
        "started_at": record.started_at,
        "departed_at": record.departed_at,
    }
    if not record.admitted:
        return block
    stats = tenant.driver.stats
    wait_dump = tenant.registry.get("fault.wait_hist").dump()
    fixed = config.cost.aex_cycles + config.cost.eresume_cycles
    wait_p50 = histogram_quantile(wait_dump, 0.5)
    wait_p99 = histogram_quantile(wait_dump, 0.99)
    block.update(
        {
            "total_cycles": tenant.now,
            "service_cycles": tenant.now - record.started_at,
            "idle_cycles": stats.time.idle,
            "faults": stats.faults,
            "accesses": stats.accesses,
            # Exact totals (reconcile with the TimeBreakdown bucket).
            "channel_wait_cycles": wait_dump["sum"],
            "channel_wait_samples": wait_dump["count"],
            "channel_wait_p50": round(wait_p50, 3),
            "channel_wait_p99": round(wait_p99, 3),
            "fault_latency_p50": round(fixed + wait_p50, 3),
            "fault_latency_p99": round(fixed + wait_p99, 3),
        }
    )
    if spec.requests is not None:
        lag_dump = tenant.lag_hist.dump()
        block["requests"] = {
            "served": tenant.requests_served,
            "lag_p50": round(histogram_quantile(lag_dump, 0.5), 3),
            "lag_p99": round(histogram_quantile(lag_dump, 0.99), 3),
        }
    if frames is not None:
        block["quota_pages"] = frames.quota_of(tenant.driver)
        block["resident_pages"] = frames.resident_of(tenant.driver)
    return block


# ----------------------------------------------------------------------
# Named scenarios
# ----------------------------------------------------------------------

_ARCHETYPE_INSTRS = {0: "stream", 1: "scatter", 2: "zipf"}


def _stream_workload(name: str, pages: int, passes: int, compute: int) -> Workload:
    return SyntheticWorkload(
        name, pages, _ARCHETYPE_INSTRS,
        [sequential(0, 0, pages, compute=compute, passes=passes)],
    )


def _scatter_workload(name: str, pages: int, count: int, compute: int) -> Workload:
    return SyntheticWorkload(
        name, pages, _ARCHETYPE_INSTRS,
        [uniform_random([1], 0, pages, count, compute=compute)],
    )


def _zipf_workload(name: str, pages: int, count: int, compute: int) -> Workload:
    return SyntheticWorkload(
        name, pages, _ARCHETYPE_INSTRS,
        [zipf_random([2], 0, pages, count, compute=compute)],
    )


def _smoke(seed: int) -> FleetScenario:
    """Six tenants, one admission wave, CI-fast (<1s)."""
    config = SimConfig(epc_pages=96, scan_period_cycles=200_000, valve_slack=16)
    tenants = []
    for i in range(6):
        if i % 3 == 0:
            workload = _stream_workload(f"stream-{i}", 40, 4, 3_000)
        elif i % 3 == 1:
            workload = _scatter_workload(f"scatter-{i}", 48, 220, 3_000)
        else:
            workload = _zipf_workload(f"zipf-{i}", 48, 220, 3_000)
        tenants.append(
            TenantSpec(
                workload=workload,
                scheme="dfp" if i % 2 == 0 else "baseline",
                arrival=i * 40_000,
                requests=(
                    memcached_profile(60_000, events_per_request=16)
                    if i % 3 == 1
                    else None
                ),
            )
        )
    return FleetScenario(
        name="smoke",
        tenants=tuple(tenants),
        config=config,
        seed=seed,
        max_admitted=4,
        spinup_pages=4,
        rebalance_period_cycles=400_000,
        min_quota_pages=4,
    )


def _steady8(seed: int) -> FleetScenario:
    """Eight tenants, no churn — the policy-comparison workhorse."""
    config = SimConfig(epc_pages=128, scan_period_cycles=300_000, valve_slack=16)
    tenants = []
    for i in range(8):
        if i % 4 in (0, 1):
            workload = _stream_workload(f"stream-{i}", 56, 4, 3_000)
        elif i % 4 == 2:
            workload = _scatter_workload(f"scatter-{i}", 64, 320, 3_000)
        else:
            workload = _zipf_workload(f"zipf-{i}", 64, 320, 3_000)
        tenants.append(
            TenantSpec(
                workload=workload,
                scheme=("baseline", "dfp-stop", "dfp", "baseline")[i % 4],
                requests=(
                    memcached_profile(120_000, events_per_request=32)
                    if i % 2 == 0
                    else None
                ),
            )
        )
    return FleetScenario(
        name="steady-8",
        tenants=tuple(tenants),
        config=config,
        seed=seed,
        rebalance_period_cycles=500_000,
    )


def _churn50(seed: int) -> FleetScenario:
    """56 tenants arriving in waves behind a 24-slot admission cap."""
    config = SimConfig(epc_pages=192, scan_period_cycles=400_000, valve_slack=16)
    tenants = []
    for i in range(56):
        kind = i % 3
        if kind == 0:
            workload = _stream_workload(f"stream-{i}", 40, 3, 2_500)
        elif kind == 1:
            workload = _scatter_workload(f"scatter-{i}", 44, 180, 2_500)
        else:
            workload = _zipf_workload(f"zipf-{i}", 44, 180, 2_500)
        tenants.append(
            TenantSpec(
                workload=workload,
                scheme=("baseline", "dfp-stop", "dfp")[i % 3],
                # First wave at t=0, then staggered arrivals: churn.
                arrival=0 if i < 8 else (i - 7) * 120_000,
                requests=(
                    memcached_profile(90_000, events_per_request=20)
                    if i % 4 == 0
                    else None
                ),
            )
        )
    return FleetScenario(
        name="churn-50",
        tenants=tuple(tenants),
        config=config,
        seed=seed,
        max_admitted=24,
        spinup_pages=8,
        rebalance_period_cycles=1_000_000,
        min_quota_pages=4,
    )


SCENARIOS = {
    "smoke": _smoke,
    "steady-8": _steady8,
    "churn-50": _churn50,
}

#: Stable, sorted scenario names for CLI help and listings.
SCENARIO_NAMES = tuple(sorted(SCENARIOS))


def build_scenario(
    name: str, *, seed: int = 0, policy: Optional[str] = None
) -> FleetScenario:
    """Materialize a named scenario, optionally overriding its policy."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fleet scenario {name!r} "
            f"(choose from {', '.join(SCENARIO_NAMES)})"
        ) from None
    scenario = factory(seed)
    if policy is not None:
        if policy not in EPC_POLICIES:
            raise ConfigError(
                f"unknown EPC policy {policy!r} "
                f"(choose from {', '.join(EPC_POLICIES)})"
            )
        scenario = replace(scenario, policy=policy)
    return scenario
