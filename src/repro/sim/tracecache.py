"""Trace materialization cache for the simulation hot path.

Workload traces are deterministic in ``(workload, seed, input_set)``
(see :mod:`repro.workloads.base`), yet every scheme comparison used to
regenerate the same event stream once per scheme: a four-scheme
comparison walked the same generator pipeline — phase factories, page
bounds checks, instruction checks — four times.  This module
materializes a trace once into three compact ``array('q')`` columns
and replays it for every subsequent run of the same key.

Replay is exact: :class:`MaterializedTrace` yields the identical
``(instruction, page, compute_cycles)`` tuples the generator would
have produced, so cached and uncached simulations are equal
result-for-result (asserted in ``tests/sim/test_tracecache.py``).

The cache is a bounded LRU measured in *bytes* of column storage, not
entries, because trace lengths vary by orders of magnitude between a
microbenchmark and a paper-scale SPEC model.  A trace larger than the
whole budget is materialized and returned but never stored.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from itertools import accumulate
from typing import Iterable, Iterator, Optional, Tuple

from repro.errors import ConfigError
from repro.units import MIB
from repro.workloads.base import TraceEvent, Workload

__all__ = [
    "CacheKey",
    "MaterializedTrace",
    "TraceCache",
    "DEFAULT_TRACE_CACHE_BYTES",
    "materialize",
    "materialize_events",
    "trace_key",
    "shared_trace_cache",
]

#: Default byte budget of the process-wide shared cache: enough for
#: every scale-16 workload model at once, small next to the EPC model.
DEFAULT_TRACE_CACHE_BYTES = 256 * MIB

#: Identity of one materialized trace.  The footprint is part of the
#: key because workload *names* do not encode the build scale — ``lbm``
#: at scale 4 and scale 16 are different traces under the same name.
CacheKey = Tuple[str, int, int, str]


@dataclass(frozen=True)
class MaterializedTrace:
    """One workload trace, stored as three parallel ``array`` columns.

    Iterating yields the same :data:`~repro.workloads.base.TraceEvent`
    tuples as the originating generator, in the same order.
    """

    key: CacheKey
    instructions: array
    pages: array
    cycles: array

    def __iter__(self) -> Iterator[TraceEvent]:
        return zip(self.instructions, self.pages, self.cycles)

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def nbytes(self) -> int:
        """Bytes of column storage this trace occupies."""
        return sum(
            column.itemsize * len(column)
            for column in (self.instructions, self.pages, self.cycles)
        )

    @cached_property
    def cumulative_cycles(self) -> array:
        """Prefix sums of the compute column: ``cum[k] = Σ cycles[0..k]``.

        The batched engine bisects this column to find how far the
        clock can advance before the next event horizon (scan deadline
        or channel completion).  Computed once per trace on first use
        and cached on the instance; like the data columns it is
        immutable by contract.
        """
        return array("q", accumulate(self.cycles))

    @cached_property
    def page_span(self) -> Tuple[int, int]:
        """``(min, max)`` of the page column (``(0, -1)`` when empty).

        The batched engine sizes the EPC's status table from the upper
        bound and falls back to the scalar path when the lower bound
        is negative (a page number no byte table can index).
        """
        if not self.pages:
            return (0, -1)
        return (min(self.pages), max(self.pages))


def materialize_events(
    events: Iterable[TraceEvent], key: CacheKey
) -> MaterializedTrace:
    """Materialize an already-open event stream into compact columns."""
    instructions = array("q")
    pages = array("q")
    cycles = array("q")
    for instr, page, compute in events:
        instructions.append(instr)
        pages.append(page)
        cycles.append(compute)
    return MaterializedTrace(
        key=key, instructions=instructions, pages=pages, cycles=cycles
    )


def materialize(workload: Workload, *, seed: int, input_set: str) -> MaterializedTrace:
    """Walk one trace generator to completion into compact columns."""
    return materialize_events(
        workload.trace(seed=seed, input_set=input_set),
        trace_key(workload, seed, input_set),
    )


def trace_key(workload: Workload, seed: int, input_set: str) -> CacheKey:
    """The cache identity of one ``(workload, seed, input_set)`` trace."""
    return (workload.name, workload.footprint_pages, seed, input_set)


class TraceCache:
    """A bounded, byte-budgeted LRU of materialized traces."""

    def __init__(self, max_bytes: int = DEFAULT_TRACE_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ConfigError(f"trace cache budget must be positive, got {max_bytes}")
        self._max_bytes = max_bytes
        self._entries: "OrderedDict[CacheKey, MaterializedTrace]" = OrderedDict()
        self._current_bytes = 0
        #: Lifetime counters, exposed for tests and the perf harness.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def max_bytes(self) -> int:
        """The byte budget entries are evicted to stay under."""
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        """Bytes of column storage currently held."""
        return self._current_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(
        self, workload: Workload, *, seed: int = 0, input_set: str = "ref"
    ) -> MaterializedTrace:
        """The materialized trace for ``(workload, seed, input_set)``.

        A hit refreshes the entry's recency; a miss walks the generator
        once, stores the columns (evicting least-recently-used entries
        past the byte budget) and returns them.
        """
        key = trace_key(workload, seed, input_set)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = materialize(workload, seed=seed, input_set=input_set)
        self._store(key, entry)
        return entry

    def _store(self, key: CacheKey, entry: MaterializedTrace) -> None:
        size = entry.nbytes
        if size > self._max_bytes:
            # Larger than the whole budget: serve it, never store it —
            # caching it would evict everything else for a single entry.
            return
        self._entries[key] = entry
        self._current_bytes += size
        while self._current_bytes > self._max_bytes:
            _old_key, old = self._entries.popitem(last=False)
            self._current_bytes -= old.nbytes
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
        self._current_bytes = 0

    def stats(self) -> dict:
        """JSON-ready snapshot of the cache's state and counters."""
        return {
            "entries": len(self._entries),
            "current_bytes": self._current_bytes,
            "max_bytes": self._max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Process-wide shared cache (lazily built).  Workers of the parallel
#: runner each get their own copy-on-fork instance, so no locking is
#: needed anywhere.
_SHARED: Optional[TraceCache] = None


def shared_trace_cache() -> TraceCache:
    """The process-wide :class:`TraceCache` the experiment drivers use."""
    global _SHARED
    if _SHARED is None:
        _SHARED = TraceCache()
    return _SHARED
