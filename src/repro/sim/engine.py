"""The simulation engine.

``simulate`` executes one workload trace against the enclave substrate
under one scheme, on a single virtual-cycle clock:

* compute cycles advance the clock;
* SIP-instrumented instructions run the notification stub first
  (:meth:`~repro.enclave.driver.SgxDriver.sip_prefetch`);
* every page touch goes through the driver
  (:meth:`~repro.enclave.driver.SgxDriver.access`), which services
  faults, runs the DFP machinery and the periodic service thread, and
  drains the background preload channel in correct time order.

The engine asserts the accounting invariant that the per-bucket time
breakdown reconstructs the total run time exactly — a cheap end-to-end
check that no simulated cycle is double-counted or lost.  With
``config.sanitize`` set, the driver additionally carries a
:class:`~repro.enclave.sanitizer.SimSanitizer` that re-proves this
identity at *every* service-thread tick and cross-checks the
EPC/channel/counter invariants per event, raising
:class:`~repro.errors.SanitizerError` with the offending event tail.

Two engines execute the hot loop:

* the **scalar** engine walks the trace one event at a time, exactly
  as described above;
* the **batched** engine exploits the event-horizon structure of the
  simulation: between two "interesting" times — the next load-channel
  completion and the next service-thread scan deadline
  (:meth:`~repro.enclave.platform.SharedPlatform.next_wakeup`) — a run
  of resident accesses changes nothing but the clock, the accessed
  bits and three counters.  When replaying a columnar
  :class:`~repro.sim.tracecache.MaterializedTrace` it bisects the
  trace's cumulative-cycles column to find how far the clock can
  advance before the horizon, scans that window for the first
  non-resident (or SIP-instrumented) page, and retires the whole
  resident prefix in one step — falling into the scalar per-event
  path only at faults, SIP notifications and horizon crossings.  A
  run-length governor keeps the worst case honest: bulk bookkeeping
  only pays off when runs are long enough, so the engine probes its
  own yield (events retired per iteration) and bursts through
  thrashing stretches with the plain scalar step, with exponential
  backoff while the trace stays hostile.

The two engines are byte-identical by contract (the differential grid
in ``tests/sim/test_batched_engine.py`` asserts equal manifests over
schemes × workloads × seeds × configs).  ``engine="auto"`` — the
default — picks the batched engine whenever it applies: a materialized
trace and no observers.  Observed runs (sanitizer, tracer, paging
profiler, enabled metrics, event recording) always keep the scalar
path so every per-event hook keeps firing; passivity guarantees are
untouched.

``simulate_native`` runs the same trace *outside* any enclave (first
touch of each page costs a regular ~2k-cycle fault) and exists for the
motivation experiment: the paper's observed ~46× slowdown of the
sequential microbenchmark inside SGX.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import deque
from itertools import accumulate, islice
from operator import add
from typing import Iterable, Optional

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan, build_sip_plan
from repro.core.profiler import profile_workload
from repro.core.schemes import Scheme, make_scheme
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.enclave.epc import PAGE_ACCESSED, PAGE_PRELOADED, PAGE_RESIDENT
from repro.errors import ConfigError, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.paging import PagingProfiler
from repro.obs.trace import TraceSink
from repro.sim.results import RunResult
from repro.sim.tracecache import MaterializedTrace, materialize_events, trace_key
from repro.workloads.base import TraceEvent, Workload

__all__ = ["simulate", "simulate_native", "prepare_sip_plan", "ENGINE_CHOICES"]

#: Valid values of ``simulate``'s ``engine`` parameter.
ENGINE_CHOICES = ("auto", "scalar", "batched")

#: Retirement translation: set the accessed bit of every status byte.
#: A touch is idempotent under the bit encoding (``code | ACCESSED``),
#: so a whole run's bits are written with one C-level
#: ``map(table.__setitem__, run_pages, snapshot.translate(this))``
#: scatter — duplicate pages in the run write the same byte twice.
_OR_ACCESSED = bytes(code | PAGE_ACCESSED for code in range(256))

#: A resident, not-yet-accessed page with a pending preload credit —
#: the snapshot byte that marks a preload hit (first touch).
_PRELOAD_PENDING = PAGE_RESIDENT | PAGE_PRELOADED

#: Run-length governor (see ``_run_batched``).  Bulk retirement pays a
#: fixed bookkeeping cost per outer iteration (horizon bisect, window
#: snapshot, scatter); it wins only when each iteration retires enough
#: events to amortize that cost against the scalar fast path.  The
#: governor measures exactly that — events retired per iteration over
#: a probe of ``_PROBE_ITERS`` iterations — and when the yield is
#: below the breakeven threshold it bursts through the next span of
#: events with the plain scalar step (identical effects, no window
#: bookkeeping), doubling the span while probes keep failing so a
#: trace that never develops long runs converges to pure scalar
#: speed.  Instrumented traces get a lower threshold: their scalar
#: alternative pays a SIP notification call per event, so bulk pays
#: off at much shorter runs.
_PROBE_ITERS = 128
_MIN_YIELD = 16
_MIN_YIELD_SIP = 6
_SCALAR_SPAN = 8192
_SPAN_CAP = 1 << 20


def prepare_sip_plan(
    workload: Workload,
    config: SimConfig,
    *,
    threshold: Optional[float] = None,
    seed: int = 0,
) -> SipPlan:
    """Profile ``workload`` on its training input and compile a SIP plan.

    This is the full PGO pipeline of Section 3.2: profiling run on the
    *train* input set, per-instruction classification, threshold
    decision.  Performance runs then use the *ref* input set, exactly
    like the paper's methodology (Section 5.2).
    """
    profile = profile_workload(workload, config, input_set="train", seed=seed)
    return build_sip_plan(
        profile, config.sip_threshold if threshold is None else threshold
    )


def _run_batched(
    driver: SgxDriver,
    breakdown,
    instrumented,
    trace: MaterializedTrace,
    max_accesses: Optional[int],
    bitmap_check_cycles: int,
) -> int:
    """Consume a materialized trace in resident runs; return end time.

    The horizon invariant this loop rests on: strictly before
    ``driver.next_wakeup()`` no state transition can occur other than
    the ones the application's own resident touches make (accessed
    bits, preload-hit credit, a handful of counters).  So a maximal
    prefix of events whose completion times fall inside the horizon
    *and* whose pages are resident is retired in one step — the
    per-event poll, the ELRANGE check and the fault machinery provably
    cannot fire inside it.  A SIP-instrumented event on a *resident*
    page is retired inside the run too: its ``BIT_MAP_CHECK`` provably
    succeeds, so it reduces to fixed counter/time bumps.  Each check
    stretches the run's wall time by ``bitmap_check_cycles``; that
    delay is folded into a SIP-adjusted cumulative column computed
    once up front (``cum[k]`` plus one check per instrumented event so
    far), so the horizon window stays a single bisect.  The first
    event that crosses the horizon or misses residency goes through
    the scalar path, which advances the background machinery and
    re-opens the next horizon window.
    """
    pages = trace.pages
    instrs = trace.instructions
    cycles = trace.cycles
    cum = trace.cumulative_cycles
    n = len(pages)
    if max_accesses is not None and max_accesses < n:
        n = max_accesses
    epc = driver.epc
    # Cover every trace page so the status table can be indexed
    # unconditionally (pages outside the ELRANGE read PAGE_ABSENT and
    # take the scalar path, which raises the proper error).
    epc.ensure_page_span(trace.page_span[1] + 1)
    status = epc.status_table
    status_get = status.__getitem__
    status_set = status.__setitem__
    consume = deque(maxlen=0).extend
    next_wakeup = driver.platform.next_wakeup
    access = driver.access
    sip_prefetch = driver.sip_prefetch
    or_accessed = _OR_ACCESSED
    pending = _PRELOAD_PENDING
    # Run retirement is inlined below (RL011 sanctions bulk RunStats
    # mutation exactly here and in the driver): per
    # :meth:`~repro.enclave.driver.SgxDriver.retire_run`'s contract,
    # each run books ``stop`` accesses/EPC hits, its distinct preload
    # hits, and its SIP check/hit/bitmap-read counts.  The driver's
    # ``_last_now``/``_clock_hw`` stamps are deliberately *not* kept
    # per run: they only feed the monotonic-time guard (time never
    # moves backwards here) and the sanitizer's tick accounting (a
    # sanitized run is observed, hence never batched); the scalar
    # steps and ``finish()`` restamp them at every real interaction.
    stats = driver.stats
    bitmap = driver.bitmap
    if instrumented is not None:
        # One up-front C-level pass: which events are instrumented,
        # the running count of checks, and the check-adjusted prefix
        # sums the horizon bisect runs over.  ``horizon_cum[k]`` is
        # the virtual time *elapsed* once event k completes (compute
        # plus one BIT_MAP_CHECK per instrumented event ≤ k), so the
        # one bisect per window already accounts for the delay the
        # inlined checks inject.
        iflags = bytes(map(instrumented.__contains__, instrs[:n]))
        sip_counts = array("q", accumulate(iflags))
        horizon_cum = array(
            "q", map(add, cum[:n], map(bitmap_check_cycles.__mul__, sip_counts))
        )
    else:
        iflags = None
        sip_counts = None
        horizon_cum = cum
    now = 0
    i = 0
    # Scanned windows are capped to an adaptive chunk tracking recent
    # run lengths: the horizon can sit thousands of events away while
    # the run ends at the next fault, and snapshotting the full
    # horizon window every time would rescan the tail once per run
    # (quadratic in the window).  The chunk doubles while runs fill it
    # and shrinks towards twice the observed run length at blockers.
    chunk = 32
    # Run-length governor state: every _PROBE_ITERS outer iterations,
    # compare events retired against the breakeven yield; on a failing
    # probe, burst the next `span` events through the scalar step and
    # double the span (reset on a passing probe).  All transitions are
    # pure functions of the trace and counters, so governed runs stay
    # deterministic — and both paths have identical effects, so the
    # result stays byte-equal to the scalar engine either way.
    min_yield = _MIN_YIELD if instrumented is None else _MIN_YIELD_SIP
    probe_quota = _PROBE_ITERS * min_yield
    span = _SCALAR_SPAN
    iters = 0
    anchor_iters = 0
    anchor_i = 0
    while i < n:
        iters += 1
        if iters - anchor_iters >= _PROBE_ITERS:
            if i - anchor_i < probe_quota:
                end = i + span
                if end > n:
                    end = n
                if span < _SPAN_CAP:
                    span *= 2
                if iflags is None:
                    for k in range(i, end):
                        spent = cycles[k]
                        now += spent
                        breakdown.compute += spent
                        now = access(pages[k], now)
                else:
                    for k in range(i, end):
                        spent = cycles[k]
                        now += spent
                        breakdown.compute += spent
                        if iflags[k]:
                            now = sip_prefetch(pages[k], now)
                        now = access(pages[k], now)
                i = end
                if i >= n:
                    break
            else:
                span = _SCALAR_SPAN
            anchor_iters = iters
            anchor_i = i
        # Events [i, j) complete strictly before the horizon:
        # ``horizon_cum[k] - offset < next_wakeup() - now`` ⟺ event k
        # (including its bitmap check, if instrumented) finishes
        # before background state can change.
        offset = horizon_cum[i - 1] if i else 0
        hi = i + chunk
        if hi > n:
            hi = n
        j = bisect_left(horizon_cum, next_wakeup() - now + offset, i, hi)
        width = j - i
        stop = 0
        if width and status_get(pages[i]):
            # One C-level sweep snapshots the window's status bytes;
            # the snapshot stays valid for the whole window because
            # inside the horizon only this loop mutates page state.
            window = pages[i:j]
            flags = bytes(map(status_get, window))
            stop = flags.find(0)
            if stop < 0:
                stop = width
            chunk = 2 * stop
            if chunk > 16384:
                chunk = 16384
            elif chunk < 32:
                chunk = 32
            if stop:
                # Retire the run [i, i+stop): every page resident, so
                # every instrumented event's bitmap check hits.
                # Preload hits are the *distinct* pages whose snapshot
                # byte is still RESIDENT|PRELOADED (first touch of an
                # uncredited preload); the accessed bits are then
                # written back in one C-level scatter — OR-ing the
                # accessed bit is idempotent, so duplicate pages in
                # the run are naturally handled.
                if stop < width:
                    run = window[:stop]
                    rflags = flags[:stop]
                else:
                    run = window
                    rflags = flags
                hits = rflags.count(pending)
                if hits > 1:
                    seen = set()
                    pos = rflags.find(pending)
                    while pos >= 0:
                        seen.add(run[pos])
                        pos = rflags.find(pending, pos + 1)
                    hits = len(seen)
                consume(map(status_set, run, rflags.translate(or_accessed)))
                last = i + stop - 1
                delta = horizon_cum[last] - offset
                now += delta
                stats.accesses += stop
                stats.epc_hits += stop
                if hits:
                    stats.preload_hits += hits
                if sip_counts is None:
                    breakdown.compute += delta
                else:
                    spent = cum[last] - (cum[i - 1] if i else 0)
                    breakdown.compute += spent
                    sip_hits = sip_counts[last] - (sip_counts[i - 1] if i else 0)
                    if sip_hits:
                        breakdown.sip_check += delta - spent
                        stats.sip_checks += sip_hits
                        stats.sip_check_hits += sip_hits
                        bitmap.reads += sip_hits
                i += stop
            if stop == width:
                continue
        # One scalar event: the horizon crossing, fault or non-resident
        # SIP notification the run stopped at (or, with an empty
        # window, an overdue scan/completion the access's inlined poll
        # retires first).  Guarantees progress per outer iteration.
        page = pages[i]
        spent = cycles[i]
        now += spent
        breakdown.compute += spent
        if iflags is not None and iflags[i]:
            now = sip_prefetch(page, now)
        now = access(page, now)
        i += 1
    return now


def simulate(
    workload: Workload,
    config: SimConfig,
    scheme: "Scheme | str" = "baseline",
    *,
    seed: int = 0,
    input_set: str = "ref",
    sip_plan: Optional[SipPlan] = None,
    record_events: bool = False,
    max_accesses: Optional[int] = None,
    metrics: Optional["MetricsRegistry"] = None,
    tracer: Optional["TraceSink"] = None,
    event_capacity: Optional[int] = None,
    trace: Optional[Iterable[TraceEvent]] = None,
    profiler: Optional["PagingProfiler"] = None,
    engine: str = "auto",
) -> RunResult:
    """Run one workload under one scheme; return its result.

    ``scheme`` may be a prebuilt :class:`~repro.core.schemes.Scheme`
    or a scheme name; names needing SIP use ``sip_plan`` when given
    and otherwise compile one on the fly via :func:`prepare_sip_plan`.
    ``max_accesses`` truncates the trace (useful for tests).

    ``trace`` replays a pre-materialized event stream (see
    :mod:`repro.sim.tracecache`) instead of walking the workload's
    generator; it must be exactly what ``workload.trace(seed=seed,
    input_set=input_set)`` would yield, so results are identical
    either way — the scheme comparison drivers use this to walk a
    trace once and replay it for every scheme.

    ``engine`` selects the hot-loop implementation — results are
    byte-identical either way, so callers can never choose *wrong*,
    only slower:

    * ``"auto"`` (default): the batched event-horizon engine whenever
      it applies — a :class:`~repro.sim.tracecache.MaterializedTrace`
      to replay and no observers attached — else the scalar engine.
    * ``"scalar"``: always walk the trace one event at a time.
    * ``"batched"``: force the batched engine; materializes the trace
      first when handed a generator, and raises
      :class:`~repro.errors.ConfigError` when an observer is attached
      (observed runs need the per-event scalar hooks).

    The run's :class:`~repro.sim.results.RunResult` records the choice
    on its comparison-excluded ``engine`` field.

    Observability (all passive — none of these change the outcome):
    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` the
    driver and DFP layers publish into (its dump lands on
    ``RunResult.metrics``); ``tracer`` is an extra
    :class:`~repro.obs.trace.TraceSink` receiving every timeline event
    as it happens; ``event_capacity`` bounds the ``record_events``
    ring buffer (most recent events win, drops are counted);
    ``profiler`` is a :class:`~repro.obs.paging.PagingProfiler` the
    driver feeds every paging decision (read its
    :meth:`~repro.obs.paging.PagingProfiler.profile` after the run).
    """
    if engine not in ENGINE_CHOICES:
        raise ConfigError(
            f"unknown engine {engine!r}; choose one of {ENGINE_CHOICES}"
        )
    observers = []
    if config.sanitize:
        observers.append("sanitizer")
    if record_events:
        observers.append("record_events")
    if tracer is not None:
        observers.append("tracer")
    if profiler is not None:
        observers.append("profiler")
    if metrics is not None and metrics.enabled:
        observers.append("metrics")
    if engine == "batched" and observers:
        raise ConfigError(
            "engine='batched' cannot run an observed simulation "
            f"({', '.join(observers)} attached): per-event hooks need "
            "the scalar path; use engine='auto' or 'scalar'"
        )
    use_batched = engine == "batched" or (
        engine == "auto" and not observers and isinstance(trace, MaterializedTrace)
    )
    if isinstance(scheme, str):
        if scheme in ("sip", "hybrid") and sip_plan is None:
            sip_plan = prepare_sip_plan(workload, config, seed=seed)
        scheme = make_scheme(scheme, config, sip_plan=sip_plan)

    dfp = scheme.build_dfp(metrics=metrics)
    sip = scheme.build_sip()
    points = scheme.sip_plan.instrumentation_points if scheme.sip_plan else 0
    enclave = Enclave(
        name=workload.name,
        elrange_pages=workload.elrange_pages,
        instrumentation_points=points,
    )
    driver = SgxDriver(
        config,
        enclave,
        dfp=dfp,
        record_events=record_events,
        metrics=metrics,
        tracer=tracer,
        event_capacity=event_capacity,
        profiler=profiler,
    )
    breakdown = driver.stats.time
    instrumented = sip.instrumented if sip is not None else None

    if use_batched and not isinstance(trace, MaterializedTrace):
        # engine="batched" on a generator (or an arbitrary event
        # stream): materialize once, truncating up front so a huge
        # trace capped by max_accesses is never fully walked.
        events = (
            trace
            if trace is not None
            else workload.trace(seed=seed, input_set=input_set)
        )
        if max_accesses is not None:
            events = islice(events, max_accesses)
        trace = materialize_events(
            events, trace_key(workload, seed, input_set)
        )
    if use_batched and trace.page_span[0] < 0:
        # Negative page numbers cannot index the status table; the
        # scalar engine raises the proper out-of-ELRANGE error at the
        # offending event.
        use_batched = False
    if use_batched:
        now = _run_batched(
            driver,
            breakdown,
            instrumented,
            trace,
            max_accesses,
            config.cost.bitmap_check_cycles,
        )
    else:
        now = 0
        sip_prefetch = driver.sip_prefetch
        access = driver.access
        events: Iterable[TraceEvent] = (
            trace
            if trace is not None
            else workload.trace(seed=seed, input_set=input_set)
        )
        if max_accesses is not None:
            events = islice(events, max_accesses)
        # Hot loop.  Two variants so the common non-SIP run pays
        # neither the membership test nor the extra branch per event;
        # both keep ``breakdown.compute`` current per event because the
        # sanitizer's per-tick accounting identity reads it mid-run.
        if instrumented is None:
            for _instr, page, cycles in events:
                now += cycles
                breakdown.compute += cycles
                now = access(page, now)
        else:
            for instr, page, cycles in events:
                now += cycles
                breakdown.compute += cycles
                if instr in instrumented:
                    now = sip_prefetch(page, now)
                now = access(page, now)
    driver.finish(now)
    if driver.sanitizer is not None:
        # End-of-run sweep: the per-tick checks ran at every scan; this
        # closes the run with the same identity at the final clock plus
        # the EPC-occupancy and abort-accounting invariants.
        driver.sanitizer.check_final(driver.stats, now)

    if breakdown.total != now:
        raise SimulationError(
            f"time accounting mismatch: buckets sum to {breakdown.total}, "
            f"clock reads {now}"
        )
    return RunResult(
        workload=workload.name,
        scheme=scheme.name,
        input_set=input_set,
        seed=seed,
        total_cycles=now,
        stats=driver.stats,
        config=config,
        sip_points=points,
        events=driver.events if record_events else None,
        metrics=(
            metrics.as_dict()
            if metrics is not None and metrics.enabled
            else None
        ),
        engine="batched" if use_batched else "scalar",
    )


def simulate_native(
    workload: Workload,
    config: SimConfig,
    *,
    seed: int = 0,
    input_set: str = "ref",
    max_accesses: Optional[int] = None,
) -> RunResult:
    """Run the workload outside SGX: regular minor faults only.

    First touch of each page costs ``regular_fault_cycles`` (~2k); all
    other touches are free beyond their compute.  Used to reproduce
    the motivation numbers of Sections 1–2.
    """
    from repro.enclave.stats import RunStats

    stats = RunStats()
    touched = set()
    fault_cost = config.cost.regular_fault_cycles
    now = 0
    count = 0
    for _instr, page, cycles in workload.trace(seed=seed, input_set=input_set):
        now += cycles
        stats.time.compute += cycles
        stats.accesses += 1
        if page not in touched:
            touched.add(page)
            stats.faults += 1
            now += fault_cost
            stats.time.fault_wait += fault_cost
        else:
            stats.epc_hits += 1
        count += 1
        if max_accesses is not None and count >= max_accesses:
            break
    return RunResult(
        workload=workload.name,
        scheme="native",
        input_set=input_set,
        seed=seed,
        total_cycles=now,
        stats=stats,
        config=config,
    )
