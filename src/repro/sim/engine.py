"""The simulation engine.

``simulate`` executes one workload trace against the enclave substrate
under one scheme, on a single virtual-cycle clock:

* compute cycles advance the clock;
* SIP-instrumented instructions run the notification stub first
  (:meth:`~repro.enclave.driver.SgxDriver.sip_prefetch`);
* every page touch goes through the driver
  (:meth:`~repro.enclave.driver.SgxDriver.access`), which services
  faults, runs the DFP machinery and the periodic service thread, and
  drains the background preload channel in correct time order.

The engine asserts the accounting invariant that the per-bucket time
breakdown reconstructs the total run time exactly — a cheap end-to-end
check that no simulated cycle is double-counted or lost.  With
``config.sanitize`` set, the driver additionally carries a
:class:`~repro.enclave.sanitizer.SimSanitizer` that re-proves this
identity at *every* service-thread tick and cross-checks the
EPC/channel/counter invariants per event, raising
:class:`~repro.errors.SanitizerError` with the offending event tail.

``simulate_native`` runs the same trace *outside* any enclave (first
touch of each page costs a regular ~2k-cycle fault) and exists for the
motivation experiment: the paper's observed ~46× slowdown of the
sequential microbenchmark inside SGX.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Optional

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan, build_sip_plan
from repro.core.profiler import profile_workload
from repro.core.schemes import Scheme, make_scheme
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.paging import PagingProfiler
from repro.obs.trace import TraceSink
from repro.sim.results import RunResult
from repro.workloads.base import TraceEvent, Workload

__all__ = ["simulate", "simulate_native", "prepare_sip_plan"]


def prepare_sip_plan(
    workload: Workload,
    config: SimConfig,
    *,
    threshold: Optional[float] = None,
    seed: int = 0,
) -> SipPlan:
    """Profile ``workload`` on its training input and compile a SIP plan.

    This is the full PGO pipeline of Section 3.2: profiling run on the
    *train* input set, per-instruction classification, threshold
    decision.  Performance runs then use the *ref* input set, exactly
    like the paper's methodology (Section 5.2).
    """
    profile = profile_workload(workload, config, input_set="train", seed=seed)
    return build_sip_plan(
        profile, config.sip_threshold if threshold is None else threshold
    )


def simulate(
    workload: Workload,
    config: SimConfig,
    scheme: "Scheme | str" = "baseline",
    *,
    seed: int = 0,
    input_set: str = "ref",
    sip_plan: Optional[SipPlan] = None,
    record_events: bool = False,
    max_accesses: Optional[int] = None,
    metrics: Optional["MetricsRegistry"] = None,
    tracer: Optional["TraceSink"] = None,
    event_capacity: Optional[int] = None,
    trace: Optional[Iterable[TraceEvent]] = None,
    profiler: Optional["PagingProfiler"] = None,
) -> RunResult:
    """Run one workload under one scheme; return its result.

    ``scheme`` may be a prebuilt :class:`~repro.core.schemes.Scheme`
    or a scheme name; names needing SIP use ``sip_plan`` when given
    and otherwise compile one on the fly via :func:`prepare_sip_plan`.
    ``max_accesses`` truncates the trace (useful for tests).

    ``trace`` replays a pre-materialized event stream (see
    :mod:`repro.sim.tracecache`) instead of walking the workload's
    generator; it must be exactly what ``workload.trace(seed=seed,
    input_set=input_set)`` would yield, so results are identical
    either way — the scheme comparison drivers use this to walk a
    trace once and replay it for every scheme.

    Observability (all passive — none of these change the outcome):
    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` the
    driver and DFP layers publish into (its dump lands on
    ``RunResult.metrics``); ``tracer`` is an extra
    :class:`~repro.obs.trace.TraceSink` receiving every timeline event
    as it happens; ``event_capacity`` bounds the ``record_events``
    ring buffer (most recent events win, drops are counted);
    ``profiler`` is a :class:`~repro.obs.paging.PagingProfiler` the
    driver feeds every paging decision (read its
    :meth:`~repro.obs.paging.PagingProfiler.profile` after the run).
    """
    if isinstance(scheme, str):
        if scheme in ("sip", "hybrid") and sip_plan is None:
            sip_plan = prepare_sip_plan(workload, config, seed=seed)
        scheme = make_scheme(scheme, config, sip_plan=sip_plan)

    dfp = scheme.build_dfp(metrics=metrics)
    sip = scheme.build_sip()
    points = scheme.sip_plan.instrumentation_points if scheme.sip_plan else 0
    enclave = Enclave(
        name=workload.name,
        elrange_pages=workload.elrange_pages,
        instrumentation_points=points,
    )
    driver = SgxDriver(
        config,
        enclave,
        dfp=dfp,
        record_events=record_events,
        metrics=metrics,
        tracer=tracer,
        event_capacity=event_capacity,
        profiler=profiler,
    )
    breakdown = driver.stats.time
    instrumented = sip.instrumented if sip is not None else None

    now = 0
    sip_prefetch = driver.sip_prefetch
    access = driver.access
    events: Iterable[TraceEvent] = (
        trace
        if trace is not None
        else workload.trace(seed=seed, input_set=input_set)
    )
    if max_accesses is not None:
        events = islice(events, max_accesses)
    # Hot loop.  Two variants so the common non-SIP run pays neither
    # the membership test nor the extra branch per event; both keep
    # ``breakdown.compute`` current per event because the sanitizer's
    # per-tick accounting identity reads it mid-run.
    if instrumented is None:
        for _instr, page, cycles in events:
            now += cycles
            breakdown.compute += cycles
            now = access(page, now)
    else:
        for instr, page, cycles in events:
            now += cycles
            breakdown.compute += cycles
            if instr in instrumented:
                now = sip_prefetch(page, now)
            now = access(page, now)
    driver.finish(now)
    if driver.sanitizer is not None:
        # End-of-run sweep: the per-tick checks ran at every scan; this
        # closes the run with the same identity at the final clock plus
        # the EPC-occupancy and abort-accounting invariants.
        driver.sanitizer.check_final(driver.stats, now)

    if breakdown.total != now:
        raise SimulationError(
            f"time accounting mismatch: buckets sum to {breakdown.total}, "
            f"clock reads {now}"
        )
    return RunResult(
        workload=workload.name,
        scheme=scheme.name,
        input_set=input_set,
        seed=seed,
        total_cycles=now,
        stats=driver.stats,
        config=config,
        sip_points=points,
        events=driver.events if record_events else None,
        metrics=(
            metrics.as_dict()
            if metrics is not None and metrics.enabled
            else None
        ),
    )


def simulate_native(
    workload: Workload,
    config: SimConfig,
    *,
    seed: int = 0,
    input_set: str = "ref",
    max_accesses: Optional[int] = None,
) -> RunResult:
    """Run the workload outside SGX: regular minor faults only.

    First touch of each page costs ``regular_fault_cycles`` (~2k); all
    other touches are free beyond their compute.  Used to reproduce
    the motivation numbers of Sections 1–2.
    """
    from repro.enclave.stats import RunStats

    stats = RunStats()
    touched = set()
    fault_cost = config.cost.regular_fault_cycles
    now = 0
    count = 0
    for _instr, page, cycles in workload.trace(seed=seed, input_set=input_set):
        now += cycles
        stats.time.compute += cycles
        stats.accesses += 1
        if page not in touched:
            touched.add(page)
            stats.faults += 1
            now += fault_cost
            stats.time.fault_wait += fault_cost
        else:
            stats.epc_hits += 1
        count += 1
        if max_accesses is not None and count >= max_accesses:
            break
    return RunResult(
        workload=workload.name,
        scheme="native",
        input_set=input_set,
        seed=seed,
        total_cycles=now,
        stats=stats,
        config=config,
    )
