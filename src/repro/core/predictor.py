"""The multiple-stream predictor (paper Algorithm 1).

DFP's predictor is modelled on the Linux VFS read-ahead framework: it
maintains a fixed-length LRU list of *streams*, each summarized by its
tail page number (``stpn`` — stream tail page number).  On every page
fault the OS extracts the new page number (``npn``) and walks the list:

* if ``npn`` is *sequential to* some stream's tail, that stream is
  extended (``stpn`` := ``npn``), moved to the list head, and the next
  ``LOADLENGTH`` pages of the stream are scheduled for asynchronous
  preloading;
* otherwise the least-recently-used entry is recycled to start a new
  stream at ``npn`` (no preloading yet — a single fault is not a
  pattern).

"Sequential to" is a windowed test, exactly as in read-ahead: because a
healthy stream faults only once per preloaded burst, the next fault of
the stream lands up to ``LOADLENGTH + 1`` pages beyond the recorded
tail, not strictly at ``stpn + 1``.  The window makes the detector
self-sustaining across bursts.

The predictor optionally tracks *descending* streams as well (Algorithm
1 carries a ``direction`` operand); the paper's text only demonstrates
ascending streams, so backward tracking defaults to off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["MultiStreamPredictor", "StreamEntry"]


@dataclass
class StreamEntry:
    """One tracked fault stream.

    ``stpn`` is the page of the stream's most recent fault; ``direction``
    is +1 for ascending streams, -1 for descending ones.  ``hits``
    counts how many times the stream was extended (useful for tests and
    for the ablation benches).
    """

    stpn: int
    direction: int = 1
    hits: int = 0


class MultiStreamPredictor:
    """LRU list of fault streams with windowed sequential matching."""

    def __init__(
        self,
        length: int,
        load_length: int,
        *,
        track_backward: bool = False,
    ) -> None:
        if length <= 0:
            raise ConfigError(f"stream list length must be positive, got {length}")
        if load_length <= 0:
            raise ConfigError(f"load length must be positive, got {load_length}")
        self._length = length
        self._load_length = load_length
        self._track_backward = track_backward
        # Head of the list (index 0) is the most recently used entry.
        self._streams: List[StreamEntry] = []
        # Lifetime counters.
        self.stream_hits = 0
        self.stream_misses = 0
        #: Misses that recycled an LRU entry (list was already full).
        self.stream_recycles = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Configured capacity of the stream list."""
        return self._length

    @property
    def load_length(self) -> int:
        """Pages scheduled for preload per stream extension."""
        return self._load_length

    @property
    def streams(self) -> Tuple[StreamEntry, ...]:
        """Snapshot of the stream list, most recently used first."""
        return tuple(self._streams)

    def counters(self) -> Dict[str, int]:
        """Lifetime counters, JSON-ready (for metrics and manifests)."""
        return {
            "stream_hits": self.stream_hits,
            "stream_misses": self.stream_misses,
            "stream_recycles": self.stream_recycles,
            "streams_active": len(self._streams),
        }

    def _match(self, npn: int) -> Optional[int]:
        """Return the index of the stream ``npn`` extends, or None.

        A fault extends an ascending stream when it lands within the
        window ``(stpn, stpn + LOADLENGTH + 1]`` — i.e. it is the next
        fault a stream that had its burst preloaded would produce.
        Descending streams mirror the window.
        """
        window = self._load_length + 1
        for index, entry in enumerate(self._streams):
            delta = (npn - entry.stpn) * entry.direction
            if 0 < delta <= window:
                return index
        return None

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def on_fault(self, npn: int) -> List[int]:
        """Process one fault; return the pages to preload (may be empty).

        Implements Algorithm 1: the returned ``list_to_load`` holds
        ``LOADLENGTH`` pages continuing the matched stream beyond
        ``npn`` (the faulting page itself is being demand-loaded by the
        handler and is never included).
        """
        if npn < 0:
            raise ConfigError(f"page number must be non-negative, got {npn}")
        index = self._match(npn)
        if index is None and self._track_backward:
            # A stream that has never been extended has an unconfirmed
            # direction: a fault just *below* such a tail reveals a
            # descending stream.  Flip it and match.
            window = self._load_length + 1
            for i, entry in enumerate(self._streams):
                if entry.hits == 0 and 0 < entry.stpn - npn <= window:
                    entry.direction = -1
                    index = i
                    break
        if index is not None:
            entry = self._streams.pop(index)
            entry.stpn = npn
            entry.hits += 1
            self._streams.insert(0, entry)
            self.stream_hits += 1
            step = entry.direction
            burst = [npn + step * k for k in range(1, self._load_length + 1)]
            return [page for page in burst if page >= 0]

        self.stream_misses += 1
        if len(self._streams) >= self._length:
            self.stream_recycles += 1
            recycled = self._streams.pop()
            recycled.stpn = npn
            recycled.direction = 1
            recycled.hits = 0
            self._streams.insert(0, recycled)
        else:
            self._streams.insert(0, StreamEntry(stpn=npn))
        return []

    def reset(self) -> None:
        """Forget all streams (used between profiling phases)."""
        self._streams.clear()
