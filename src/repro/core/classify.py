"""Class 1/2/3 access classification (Section 4.4).

The SIP pass decides where to instrument by replaying the profiled
access trace through the same stream machinery DFP uses at runtime
(Algorithm 1) and classifying each access by the page it touches:

* **Class 1** — the page is "on ``stream_list``", i.e. it was touched
  recently enough that it is in the EPC with high probability.  These
  accesses need no help.
* **Class 2** — the page is not on the list but is the sequential
  successor of some stream's tail.  DFP's runtime predictor captures
  these more effectively than static instrumentation, so SIP leaves
  them alone.
* **Class 3** — neither: an irregular access, the kind that produces
  an unpredictable EPC fault.  These are SIP's targets.

"In the EPC with high probability" is operationalized with a recency
window sized like the EPC itself: the classifier keeps an LRU set of
the ``window`` most recently touched distinct pages.  Under CLOCK
replacement the EPC contents approximate exactly that set, so the
Class 1 test is the profiler's best static proxy for residency.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import ConfigError

__all__ = ["AccessClass", "StreamClassifier"]


class AccessClass(enum.Enum):
    """The three access classes of Section 4.4."""

    #: Recently touched page — resident with high probability.
    CLASS1 = 1
    #: Sequential continuation of a tracked stream — DFP territory.
    CLASS2 = 2
    #: Irregular access — SIP's instrumentation target.
    CLASS3 = 3


class StreamClassifier:
    """Streaming classifier over a page-access trace.

    Feed accesses one at a time with :meth:`classify`; the classifier
    maintains its recency window and stream list incrementally, so a
    full profiling run is one linear pass.
    """

    def __init__(
        self,
        *,
        window: int,
        stream_list_length: int = 30,
        load_length: int = 4,
    ) -> None:
        if window <= 0:
            raise ConfigError(f"recency window must be positive, got {window}")
        if stream_list_length <= 0:
            raise ConfigError(
                f"stream_list_length must be positive, got {stream_list_length}"
            )
        if load_length <= 0:
            raise ConfigError(f"load_length must be positive, got {load_length}")
        self._window = window
        self._stream_length = stream_list_length
        self._match_window = load_length + 1
        # LRU over recently touched pages (the EPC-residency proxy).
        self._recent: "OrderedDict[int, None]" = OrderedDict()
        # Stream tails, most recently used first.
        self._tails: List[int] = []

    @property
    def window(self) -> int:
        """Capacity of the recency window (pages)."""
        return self._window

    def _touch_recent(self, page: int) -> bool:
        """Record ``page`` in the window; True if it was already there."""
        recent = self._recent
        if page in recent:
            recent.move_to_end(page)
            return True
        recent[page] = None
        if len(recent) > self._window:
            recent.popitem(last=False)
        return False

    def _match_stream(self, page: int) -> Optional[int]:
        """Index of the stream ``page`` sequentially extends, or None."""
        for index, tail in enumerate(self._tails):
            if 0 < page - tail <= self._match_window:
                return index
        return None

    def classify(self, page: int) -> AccessClass:
        """Classify one access and update the classifier state."""
        if page < 0:
            raise ConfigError(f"page number must be non-negative, got {page}")
        was_recent = page in self._recent
        index = self._match_stream(page)
        if was_recent:
            result = AccessClass.CLASS1
        elif index is not None:
            result = AccessClass.CLASS2
        else:
            result = AccessClass.CLASS3
        # State updates mirror Algorithm 1: extensions move to the
        # head; irregular accesses seed a new stream in the LRU slot.
        if index is not None:
            self._tails.insert(0, self._tails.pop(index))
            self._tails[0] = page
        elif not was_recent:
            if len(self._tails) >= self._stream_length:
                self._tails.pop()
            self._tails.insert(0, page)
        self._touch_recent(page)
        return result

    def classify_trace(self, pages: "list[int]") -> Dict[AccessClass, int]:
        """Classify a whole trace; return per-class counts."""
        counts = {cls: 0 for cls in AccessClass}
        for page in pages:
            counts[self.classify(page)] += 1
        return counts
