"""PGO-style profiling runs (Sections 3.2 and 4.4).

SIP is profile-guided: the program is first run with *training* input
while the profiler records, for every memory instruction (source-line
analogue), how its accesses distribute over the three classes of
:mod:`repro.core.classify`.  The instrumentation pass then selects
instructions whose irregular-access (Class 3) ratio clears a threshold.

The profiler also powers two evaluation artifacts:

* the per-benchmark classification of paper Table 1 (small working
  set / large-irregular / large-regular) via aggregate class ratios
  and footprint-to-EPC comparison;
* the access-pattern scatter data of paper Figure 3 via the recorded
  (access index, page) series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.classify import AccessClass, StreamClassifier
from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["InstructionProfile", "WorkloadProfile", "profile_workload"]


@dataclass
class InstructionProfile:
    """Per-instruction class histogram from a profiling run."""

    instruction: int
    name: str
    class1: int = 0
    class2: int = 0
    class3: int = 0

    @property
    def total(self) -> int:
        """Total profiled accesses issued by the instruction."""
        return self.class1 + self.class2 + self.class3

    @property
    def irregular_ratio(self) -> float:
        """Fraction of Class 3 (irregular) accesses — the SIP metric."""
        total = self.total
        return self.class3 / total if total else 0.0

    def add(self, cls: AccessClass) -> None:
        """Record one classified access."""
        if cls is AccessClass.CLASS1:
            self.class1 += 1
        elif cls is AccessClass.CLASS2:
            self.class2 += 1
        else:
            self.class3 += 1


@dataclass
class WorkloadProfile:
    """Result of one profiling run."""

    workload: str
    input_set: str
    footprint_pages: int
    epc_pages: int
    instructions: Dict[int, InstructionProfile] = field(default_factory=dict)
    total_accesses: int = 0
    #: Optional downsampled (index, page) series for pattern plots.
    pattern_samples: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def class_totals(self) -> Dict[AccessClass, int]:
        """Aggregate class counts over all instructions."""
        totals = {cls: 0 for cls in AccessClass}
        for prof in self.instructions.values():
            totals[AccessClass.CLASS1] += prof.class1
            totals[AccessClass.CLASS2] += prof.class2
            totals[AccessClass.CLASS3] += prof.class3
        return totals

    @property
    def irregular_ratio(self) -> float:
        """Workload-wide Class 3 fraction."""
        if not self.total_accesses:
            return 0.0
        return self.class_totals[AccessClass.CLASS3] / self.total_accesses

    @property
    def sequential_ratio(self) -> float:
        """Workload-wide Class 2 fraction."""
        if not self.total_accesses:
            return 0.0
        return self.class_totals[AccessClass.CLASS2] / self.total_accesses

    @property
    def exceeds_epc(self) -> bool:
        """True when the footprint does not fit the usable EPC."""
        return self.footprint_pages > self.epc_pages


def profile_workload(
    workload: Workload,
    config: SimConfig,
    *,
    input_set: str = "train",
    seed: int = 0,
    sample_patterns: bool = False,
    max_pattern_samples: int = 20_000,
) -> WorkloadProfile:
    """Run ``workload`` under the profiler and return its profile.

    This is the paper's offline profiling run: the training input is
    executed while every access is classified by the stream machinery.
    ``sample_patterns=True`` additionally retains a downsampled
    (access index, page) series for Figure 3-style pattern plots.
    """
    classifier = StreamClassifier(
        window=config.epc_pages,
        stream_list_length=config.stream_list_length,
        load_length=config.load_length,
    )
    profile = WorkloadProfile(
        workload=workload.name,
        input_set=input_set,
        footprint_pages=workload.footprint_pages,
        epc_pages=config.epc_pages,
    )
    instructions = profile.instructions
    for instr_id, name in workload.instructions.items():
        instructions[instr_id] = InstructionProfile(instruction=instr_id, name=name)

    stride: Optional[int] = None
    index = 0
    for instr, page, _cycles in workload.trace(seed=seed, input_set=input_set):
        prof = instructions.get(instr)
        if prof is None:
            raise WorkloadError(
                f"workload {workload.name!r} emitted unknown instruction {instr}"
            )
        prof.add(classifier.classify(page))
        if sample_patterns:
            if stride is None:
                # One pass to learn the length is wasteful; instead
                # sample adaptively with a growing stride.
                stride = 1
            if index % stride == 0:
                profile.pattern_samples.append((index, page))
                if len(profile.pattern_samples) > max_pattern_samples:
                    profile.pattern_samples = profile.pattern_samples[::2]
                    stride *= 2
        index += 1
    profile.total_accesses = index
    if index == 0:
        raise WorkloadError(f"workload {workload.name!r} produced an empty trace")
    return profile
