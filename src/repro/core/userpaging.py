"""User-level (exit-less) enclave paging — the Eleos/CoSMIX comparator.

Section 6 of the paper contrasts its preloading schemes with Eleos
[26] and CoSMIX [27], which attack the same fault overhead differently:
a software runtime *inside* the enclave manages page residency itself,
swapping encrypted pages against untrusted memory without ever taking
the hardware fault path (no AEX, no EWB/ELDU, no ERESUME).  The paper
lists three costs of that approach:

1. **security** — the software swap re-implements what EWB/ELDU do in
   hardware and "it is difficult to maintain the same security
   guarantee ... especially at the micro-architecture level";
2. **per-access overhead** — *every* memory access must be translated
   through a software page table (mitigated with a software TLB);
3. **EPC pressure** — the runtime and its page table live in the
   enclave, shrinking the space left for application pages.

This module models that design so the trade-off can be measured
against DFP/SIP on identical workloads
(``benchmarks/test_comparison_userpaging.py``).  Cost 1 is a property,
not a number — it is documented, not simulated; costs 2 and 3 are the
model parameters below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimConfig
from repro.enclave.epc import Epc
from repro.enclave.eviction import ClockEvictor
from repro.enclave.stats import RunStats
from repro.errors import ConfigError
from repro.sim.results import RunResult
from repro.workloads.base import Workload

__all__ = ["UserPagingModel", "simulate_user_paging"]


@dataclass(frozen=True)
class UserPagingModel:
    """Cost/capacity parameters of the user-level paging runtime."""

    #: Software address translation per *page event*.  A page event in
    #: this simulator aggregates the many individual memory accesses an
    #: application makes to that page; CoSMIX instruments every one of
    #: them (~10-20 cycles each after its software-TLB/caching
    #: optimizations), so the per-event aggregate is in the hundreds of
    #: cycles — the "every memory access in the enclave should be
    #: instrumented" cost the paper's Section 6 contrasts with SIP's
    #: selective instrumentation.
    spt_check_cycles: int = 800
    #: Swapping one page in at user level: AES-GCM decrypt + copy,
    #: no AEX/EWB/ELDU/ERESUME.  Far below the hardware fault's 64k —
    #: this is Eleos's whole advantage.
    soft_load_cycles: int = 15_000
    #: Writing the evicted victim back out (encrypt + copy), paid on
    #: the swapping thread synchronously at user level.
    soft_evict_cycles: int = 9_000
    #: Fraction of the EPC consumed by the runtime, its software page
    #: table and its eviction metadata — the "additional pressure on
    #: limited EPC" the paper criticizes.
    epc_overhead: float = 0.08

    def __post_init__(self) -> None:
        for name in ("spt_check_cycles", "soft_load_cycles", "soft_evict_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if not 0.0 <= self.epc_overhead < 1.0:
            raise ConfigError(
                f"epc_overhead must be within [0, 1), got {self.epc_overhead}"
            )

    def usable_pages(self, epc_pages: int) -> int:
        """Application frames left after the runtime's footprint."""
        usable = int(epc_pages * (1.0 - self.epc_overhead))
        return max(1, usable)


def simulate_user_paging(
    workload: Workload,
    config: SimConfig,
    model: "UserPagingModel | None" = None,
    *,
    seed: int = 0,
    input_set: str = "ref",
) -> RunResult:
    """Run ``workload`` under the user-level paging runtime.

    Every access pays the software translation; misses pay the
    user-level swap (plus a victim write-back once the reduced frame
    pool is full), with CLOCK replacement like the kernel's.  No
    world switches ever happen — the time breakdown records swap time
    under ``sip_wait`` (the in-enclave synchronous-wait bucket) and
    translation under ``sip_check``.
    """
    model = model or UserPagingModel()
    epc = Epc(model.usable_pages(config.epc_pages))
    evictor = ClockEvictor(epc)
    stats = RunStats()
    tb = stats.time
    check = model.spt_check_cycles
    load = model.soft_load_cycles
    evict_cost = model.soft_evict_cycles

    now = 0
    for _instr, page, cycles in workload.trace(seed=seed, input_set=input_set):
        now += cycles
        tb.compute += cycles
        stats.accesses += 1
        stats.sip_checks += 1
        now += check
        tb.sip_check += check
        if epc.is_resident(page):
            state = epc.state_of(page)
            state.accessed = True
            stats.epc_hits += 1
            continue
        # User-level swap-in: counted as a fault (it is a page miss)
        # but costing the software path, not the hardware one.
        stats.faults += 1
        stats.sip_loads += 1
        wait = load
        if epc.is_full:
            victim = evictor.select_victim()
            epc.evict(victim)
            evictor.note_evict(victim)
            stats.evictions += 1
            wait += evict_cost
        epc.insert(page)
        evictor.note_insert(page)
        epc.mark_accessed(page)
        now += wait
        tb.sip_wait += wait

    return RunResult(
        workload=workload.name,
        scheme="user-paging",
        input_set=input_set,
        seed=seed,
        total_cycles=now,
        stats=stats,
        config=config,
    )
