"""Alternative page-access predictors, for the predictor ablation.

Section 4.1 motivates the multiple-stream predictor by analogy to the
conservative prefetchers in real hardware ("next-line and stride
prefetchers") and to Linux read-ahead.  To quantify *why* the
multi-stream design is the right one for EPC fault streams, this
module provides the two classic alternatives behind the ablation bench
(``benchmarks/test_ablation_predictor.py``):

* :class:`NextLinePredictor` — prefetch the next ``LOADLENGTH`` pages
  after *every* fault, no pattern detection at all;
* :class:`StridePredictor` — a single-context stride detector: confirm
  a repeated fault-to-fault delta, then prefetch along it;
* :class:`MarkovPredictor` — a first-order fault-transition table, the
  simplest representative of the history/learning-based prefetchers
  the paper cites ([15]): remember which page followed which, prefetch
  the recorded successors.

Both implement the same ``on_fault(npn) -> list[int]`` protocol as
:class:`repro.core.predictor.MultiStreamPredictor`, so they drop into
:class:`repro.core.dfp.DfpEngine` unchanged.  The ablation shows the
expected result: next-line floods the exclusive load channel on
irregular workloads, and the single-context stride detector loses
interleaved multi-array sweeps (lbm) that the multi-stream design
tracks effortlessly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.errors import ConfigError

__all__ = ["NextLinePredictor", "StridePredictor", "MarkovPredictor"]


class NextLinePredictor:
    """Prefetch the pages following every fault, unconditionally.

    The page-level analogue of a hardware next-line prefetcher.  Has
    perfect coverage of sequential streams and maximal waste on
    everything else.
    """

    def __init__(self, load_length: int) -> None:
        if load_length <= 0:
            raise ConfigError(f"load length must be positive, got {load_length}")
        self._load_length = load_length
        self.stream_hits = 0
        self.stream_misses = 0

    @property
    def load_length(self) -> int:
        """Pages prefetched per fault."""
        return self._load_length

    def on_fault(self, npn: int) -> List[int]:
        """Always returns the next ``load_length`` pages."""
        if npn < 0:
            raise ConfigError(f"page number must be non-negative, got {npn}")
        self.stream_hits += 1
        return [npn + k for k in range(1, self._load_length + 1)]

    def reset(self) -> None:
        """No state to forget."""


class StridePredictor:
    """Single-context stride detection over the global fault stream.

    Remembers the last fault and the last delta; when the same delta
    repeats (two confirmations), prefetches ``load_length`` pages along
    the stride.  This is the classic RPT-style detector collapsed to a
    single context — exactly what breaks on interleaved streams, whose
    global fault sequence alternates between arrays and never shows a
    stable delta.
    """

    def __init__(self, load_length: int, *, max_stride: int = 64) -> None:
        if load_length <= 0:
            raise ConfigError(f"load length must be positive, got {load_length}")
        if max_stride <= 0:
            raise ConfigError(f"max stride must be positive, got {max_stride}")
        self._load_length = load_length
        self._max_stride = max_stride
        self._last_page: Optional[int] = None
        self._last_delta: Optional[int] = None
        self.stream_hits = 0
        self.stream_misses = 0

    @property
    def load_length(self) -> int:
        """Pages prefetched per confirmed stride."""
        return self._load_length

    def on_fault(self, npn: int) -> List[int]:
        """Confirm or update the stride; prefetch when confirmed."""
        if npn < 0:
            raise ConfigError(f"page number must be non-negative, got {npn}")
        burst: List[int] = []
        if self._last_page is not None:
            delta = npn - self._last_page
            if (
                delta != 0
                and abs(delta) <= self._max_stride
                and delta == self._last_delta
            ):
                self.stream_hits += 1
                burst = [
                    npn + k * delta for k in range(1, self._load_length + 1)
                ]
                burst = [page for page in burst if page >= 0]
            else:
                self.stream_misses += 1
            self._last_delta = delta if abs(delta) <= self._max_stride else None
        else:
            self.stream_misses += 1
        self._last_page = npn
        return burst

    def reset(self) -> None:
        """Forget the tracked context."""
        self._last_page = None
        self._last_delta = None


class MarkovPredictor:
    """First-order Markov prediction over the fault stream.

    Keeps a bounded LRU table mapping each faulted page to the pages
    observed to fault immediately after it (most recent first).  On a
    fault, the recorded successors of the page are prefetched, and the
    table entry of the *previous* fault is updated with the new page.

    This is the minimal history-based prefetcher in the family the
    paper points to for "more complex strategies ... or even machine
    learning based schemes" (Section 4.1, citing Hashemi et al.).  On
    fault streams it learns repeating pointer chains the stream and
    stride detectors cannot see — at the price of a table that only
    pays off when history repeats, which first-touch-dominated EPC
    fault streams rarely do.  The ablation quantifies exactly that.
    """

    def __init__(
        self,
        load_length: int,
        *,
        table_size: int = 4096,
        successors_per_page: int = 4,
    ) -> None:
        if load_length <= 0:
            raise ConfigError(f"load length must be positive, got {load_length}")
        if table_size <= 0:
            raise ConfigError(f"table size must be positive, got {table_size}")
        if successors_per_page <= 0:
            raise ConfigError(
                f"successors_per_page must be positive, got {successors_per_page}"
            )
        self._load_length = load_length
        self._table_size = table_size
        self._successors_per_page = successors_per_page
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()
        self._last_page: Optional[int] = None
        self.stream_hits = 0
        self.stream_misses = 0

    @property
    def load_length(self) -> int:
        """Maximum pages prefetched per fault."""
        return self._load_length

    def _learn(self, page: int, successor: int) -> None:
        entry = self._table.get(page)
        if entry is None:
            if len(self._table) >= self._table_size:
                self._table.popitem(last=False)
            entry = []
            self._table[page] = entry
        else:
            self._table.move_to_end(page)
        if successor in entry:
            entry.remove(successor)
        entry.insert(0, successor)
        del entry[self._successors_per_page:]

    def on_fault(self, npn: int) -> List[int]:
        """Learn the transition, predict the recorded successors."""
        if npn < 0:
            raise ConfigError(f"page number must be non-negative, got {npn}")
        if self._last_page is not None:
            self._learn(self._last_page, npn)
        self._last_page = npn
        successors = self._table.get(npn)
        if not successors:
            self.stream_misses += 1
            return []
        self.stream_hits += 1
        self._table.move_to_end(npn)
        return successors[: self._load_length]

    def reset(self) -> None:
        """Forget all learned transitions."""
        self._table.clear()
        self._last_page = None
