"""DFP — dynamic page-fault-history based preloading (Section 3.1/4.1/4.2).

The engine couples the multiple-stream predictor with the two abort
mechanisms the paper describes:

* the **in-stream abort** — when a demand fault arrives while a
  predicted burst is still queued, the not-yet-started remainder of the
  burst is dropped (implemented on the load channel; the engine is
  notified for accounting);
* the **safety valve** — the driver's service thread credits preloaded
  pages that were actually accessed (``AccPreloadCounter``) against the
  total preloaded (``PreloadCounter``), and the preload thread stops
  itself permanently once
  ``AccPreloadCounter + slack < PreloadCounter / 2``
  (the paper's empirical formula, Section 4.2).  Figure 8 calls the
  valve-enabled variant *DFP-stop*.

The engine is OS-side state: it never touches enclave memory, which is
why DFP adds nothing to the TCB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import SimConfig
from repro.core.predictor import MultiStreamPredictor
from repro.errors import ConfigError

__all__ = ["DfpConfig", "DfpEngine"]


@dataclass(frozen=True)
class DfpConfig:
    """Tunable parameters of the DFP engine (subset of SimConfig)."""

    stream_list_length: int = 30
    load_length: int = 4
    valve_enabled: bool = True
    valve_slack: int = 200_000
    valve_ratio: float = 0.5
    track_backward: bool = False

    def __post_init__(self) -> None:
        if self.stream_list_length <= 0:
            raise ConfigError(
                f"stream_list_length must be positive, got {self.stream_list_length}"
            )
        if self.load_length <= 0:
            raise ConfigError(f"load_length must be positive, got {self.load_length}")
        if self.valve_slack < 0:
            raise ConfigError(f"valve_slack must be non-negative, got {self.valve_slack}")
        if not 0.0 < self.valve_ratio <= 1.0:
            raise ConfigError(
                f"valve_ratio must be within (0, 1], got {self.valve_ratio}"
            )

    @classmethod
    def from_sim_config(cls, config: SimConfig) -> "DfpConfig":
        """Extract the DFP parameters from a full simulation config."""
        return cls(
            stream_list_length=config.stream_list_length,
            load_length=config.load_length,
            valve_enabled=config.valve_enabled,
            valve_slack=config.valve_slack,
            valve_ratio=config.valve_ratio,
            track_backward=config.track_backward_streams,
        )


class DfpEngine:
    """OS-side preloading engine: predictor + counters + valve.

    ``predictor`` defaults to the paper's multiple-stream predictor;
    any object with the same ``on_fault(npn) -> list[int]`` protocol
    (e.g. :mod:`repro.core.alt_predictors`) can be substituted for
    ablation studies.
    """

    def __init__(self, config: DfpConfig, *, predictor=None, metrics=None) -> None:
        self._config = config
        self.predictor = predictor or MultiStreamPredictor(
            config.stream_list_length,
            config.load_length,
            track_backward=config.track_backward,
        )
        #: Total pages preloaded (the paper's ``PreloadCounter``).
        self.preload_counter = 0
        #: Preloaded pages later seen accessed (``AccPreloadCounter``).
        self.acc_preload_counter = 0
        #: Burst remainders dropped by the in-stream abort.
        self.aborted_preloads = 0
        self._stopped = False
        self._register_metrics(metrics)

    def _register_metrics(self, metrics) -> None:
        """Publish the engine and predictor counters as callback gauges.

        Gauges are sampled at dump time, so observation adds nothing to
        the fault path; predictor internals are read via ``getattr``
        because substituted ablation predictors need not expose them.
        """
        if metrics is None or not metrics.enabled:
            from repro.obs.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        else:
            predictor = self.predictor
            for name, fn in (
                ("dfp.preload_counter", lambda: self.preload_counter),
                ("dfp.acc_preload_counter", lambda: self.acc_preload_counter),
                ("dfp.aborted_preloads", lambda: self.aborted_preloads),
                ("dfp.active", lambda: int(self.active)),
                ("dfp.stream_hits", lambda: getattr(predictor, "stream_hits", 0)),
                ("dfp.stream_misses", lambda: getattr(predictor, "stream_misses", 0)),
                (
                    "dfp.stream_recycles",
                    lambda: getattr(predictor, "stream_recycles", 0),
                ),
                (
                    "dfp.streams_active",
                    lambda: len(getattr(predictor, "streams", ())),
                ),
            ):
                metrics.gauge(name, fn=fn)
        self._m_valve_trips = metrics.counter(
            "dfp.valve_trips", "times the safety valve stopped the preload thread"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def config(self) -> DfpConfig:
        """The engine's immutable configuration."""
        return self._config

    @property
    def active(self) -> bool:
        """False once the safety valve has stopped the preload thread."""
        return not self._stopped

    # ------------------------------------------------------------------
    # Fault-handler hook
    # ------------------------------------------------------------------

    def on_fault(self, npn: int) -> List[int]:
        """Feed one fault to the predictor; return pages to preload.

        Returns an empty list when the valve has fired: the fault
        history keeps being *observed* (the handler runs regardless)
        but no speculative work is scheduled any more.
        """
        burst = self.predictor.on_fault(npn)
        if self._stopped:
            return []
        return burst

    # ------------------------------------------------------------------
    # Accounting hooks (driven by the driver)
    # ------------------------------------------------------------------

    def note_preload_completed(self) -> None:
        """A speculative load finished occupying the channel."""
        self.preload_counter += 1

    def note_aborted(self, count: int) -> None:
        """``count`` queued preloads were dropped by the in-stream abort."""
        self.aborted_preloads += count

    def credit_accessed(self, count: int) -> None:
        """The scan thread found ``count`` preloaded pages accessed."""
        self.acc_preload_counter += count

    def check_valve(self) -> bool:
        """Evaluate the stop formula; return True if it fired just now.

        The stop is permanent, as in the prototype: the preload thread
        exits once it is demonstrably doing more harm than good.
        """
        if self._stopped or not self._config.valve_enabled:
            return False
        threshold = self._config.valve_ratio * self.preload_counter
        if self.acc_preload_counter + self._config.valve_slack < threshold:
            self._stopped = True
            self._m_valve_trips.inc()
            return True
        return False
