"""Cost model and simulation configuration.

The paper's evaluation is driven by a handful of measured architectural
constants (Section 2, Figure 2, Figure 4):

=====================  ===============  =====================================
Constant               Paper value      Where it comes from
=====================  ===============  =====================================
AEX                    ~10,000 cycles   asynchronous enclave exit on a fault
ELDU/ELDB page load    ~44,000 cycles   swapping one EPC page back in
ERESUME                ~10,000 cycles   re-entering the enclave
regular page fault     ~2,000 cycles    non-enclave fault, for comparison
EPC usable by apps     ~96 MB           128 MB reserved minus metadata
=====================  ===============  =====================================

Everything is configurable so that experiments can scale the system down
(to run a full parameter sweep in seconds) while keeping the *ratios*
between costs identical — all of the paper's results are normalized
execution times, so relative shapes are preserved under scaling.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigError

__all__ = ["CostModel", "SimConfig"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the architectural events the simulator models.

    Attributes mirror the paper's measured numbers; see the module
    docstring for provenance.  ``ewb_cycles`` (eviction write-back) is
    kept separate and defaults to 0 because the paper folds eviction
    into its 60k–64k fault total; set it non-zero to study heavier
    eviction paths.
    """

    #: Asynchronous enclave exit taken when an enclave access faults.
    aex_cycles: int = 10_000
    #: Re-entering the enclave after the OS serviced the fault.
    eresume_cycles: int = 10_000
    #: Loading one page into the EPC (ELDU/ELDB), exclusive and
    #: non-preemptible on the paper's hardware.
    page_load_cycles: int = 44_000
    #: Evicting one EPC page (EWB): channel *housekeeping* after a
    #: load that required a victim.  Hidden inside a lone demand
    #: fault's inter-fault gap (keeping the fault's latency at the
    #: paper's 60k–64k), but it limits back-to-back load throughput —
    #: one of the reasons preloading cannot hide all fault cost even
    #: with perfect prediction (Section 5.6).
    ewb_cycles: int = 12_000
    #: A regular (non-enclave) page fault, used by the motivation
    #: experiment that compares in-enclave vs native execution.
    regular_fault_cycles: int = 2_000
    #: One execution of the SIP ``BIT_MAP_CHECK`` stub: a call into the
    #: notification function plus a read of the shared residency
    #: bitmap.  The bitmap lives in untrusted memory shared with the
    #: OS, so the common case is a cross-boundary cache miss, not a
    #: register compare — this cost on Class 1 accesses is what makes
    #: instrumenting hit-dominated instructions a wash (Section 5.2).
    bitmap_check_cycles: int = 1_400
    #: Extra cost of one ``page_loadin_function`` notification round
    #: trip (shared-memory message to the kernel thread plus the wait
    #: bookkeeping), *on top of* the page load itself.
    notification_cycles: int = 2_500

    def __post_init__(self) -> None:
        for name in (
            "aex_cycles",
            "eresume_cycles",
            "page_load_cycles",
            "ewb_cycles",
            "regular_fault_cycles",
            "bitmap_check_cycles",
            "notification_cycles",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        if self.page_load_cycles == 0:
            raise ConfigError("page_load_cycles must be positive")

    @property
    def fault_cycles(self) -> int:
        """Latency of one isolated demand enclave page fault.

        ``AEX + load + ERESUME`` — the paper's 60k–64k total.  EWB is
        channel housekeeping, not fault latency (see ``ewb_cycles``).
        """
        return self.aex_cycles + self.page_load_cycles + self.eresume_cycles

    @property
    def world_switch_cycles(self) -> int:
        """Cost removed by SIP when a fault is converted into a
        notification: the AEX + ERESUME pair."""
        return self.aex_cycles + self.eresume_cycles


#: Default number of usable EPC frames: 96 MB of 4 KiB pages.
DEFAULT_EPC_PAGES = units.pages_of(units.EPC_USABLE_BYTES)


@dataclass(frozen=True)
class SimConfig:
    """Full configuration of one simulated platform.

    The defaults reproduce the paper's platform (Section 5): 96 MB
    usable EPC, ``stream_list`` length 30, ``LOADLENGTH`` 4, SIP
    irregular-ratio threshold 5%, and the abort valve enabled with the
    paper's empirical slack formula ``Acc + slack < Preload / 2``.
    """

    #: Number of usable EPC frames (4 KiB each).
    epc_pages: int = DEFAULT_EPC_PAGES
    #: Length of the DFP predictor's LRU ``stream_list`` (Figure 6).
    stream_list_length: int = 30
    #: Pages preloaded per stream hit, ``LOADLENGTH`` (Figure 7).
    load_length: int = 4
    #: Virtual-time period of the driver's service thread that scans
    #: and clears page-table access bits (the CLOCK aging pass that the
    #: preloaded-page accounting piggybacks on).
    scan_period_cycles: int = 2_000_000
    #: Whether the DFP safety-valve abort is active (DFP-stop in Fig 8).
    valve_enabled: bool = True
    #: Slack constant in the valve formula
    #: ``AccPreloadCounter + valve_slack < valve_ratio * PreloadCounter``.
    #: The paper uses 200,000 at full scale; scaled configs shrink it
    #: proportionally so the valve trips at the same *fraction* of work.
    valve_slack: int = 200_000
    #: Accuracy ratio in the valve formula.  The paper's empirical
    #: formula uses 1/2; at reduced scale the probability that a
    #: *wasted* preload is coincidentally touched before eviction is
    #: much higher than on a 100k-page footprint, so scaled configs
    #: raise the ratio to keep the valve sensitive to the same real
    #: misprediction level.
    valve_ratio: float = 0.5
    #: SIP instrumentation threshold on the irregular-access ratio
    #: (Figure 9 finds ~5% to be the sweet spot).
    sip_threshold: float = 0.05
    #: Whether the predictor also tracks descending (backward) streams.
    #: Algorithm 1 carries a ``direction`` field; forward-only matches
    #: the paper's description most conservatively.
    track_backward_streams: bool = False
    #: Enable the runtime invariant sanitizer
    #: (:class:`repro.enclave.sanitizer.SimSanitizer`): every structural
    #: event is cross-checked against the EPC/channel/counter invariants
    #: and a violation raises :class:`~repro.errors.SanitizerError` with
    #: the offending event tail.  Read-only — results are bit-identical
    #: with it on or off — but adds per-event checking cost, so it is
    #: off by default and enabled via the CLI's ``--sanitize``.
    sanitize: bool = False
    #: Cycle costs of architectural events.
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.epc_pages <= 0:
            raise ConfigError(f"epc_pages must be positive, got {self.epc_pages}")
        if self.stream_list_length <= 0:
            raise ConfigError(
                f"stream_list_length must be positive, got {self.stream_list_length}"
            )
        if self.load_length <= 0:
            raise ConfigError(f"load_length must be positive, got {self.load_length}")
        if self.scan_period_cycles <= 0:
            raise ConfigError(
                f"scan_period_cycles must be positive, got {self.scan_period_cycles}"
            )
        if self.valve_slack < 0:
            raise ConfigError(f"valve_slack must be non-negative, got {self.valve_slack}")
        if not 0.0 < self.valve_ratio <= 1.0:
            raise ConfigError(
                f"valve_ratio must be within (0, 1], got {self.valve_ratio}"
            )
        if not 0.0 <= self.sip_threshold <= 1.0:
            raise ConfigError(
                f"sip_threshold must be within [0, 1], got {self.sip_threshold}"
            )

    def replace(self, **changes: object) -> "SimConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def scaled(cls, factor: int, **overrides: object) -> "SimConfig":
        """Return a configuration scaled down by ``factor``.

        EPC frame count and the valve slack shrink by ``factor``;
        per-event cycle costs and the predictor parameters are
        unchanged, so every *normalized* result keeps its shape.
        Workloads must be scaled by the same factor (see
        :func:`repro.workloads.registry.build_workload`).
        """
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        # The valve slack is an absolute preload count, so it must
        # shrink faster than the linear scale: scaled runs are shorter
        # in *events*, not just smaller in footprint.  Quadratic
        # scaling keeps the valve firing at a comparable fraction of a
        # misbehaving run.
        base = cls(
            epc_pages=max(1, DEFAULT_EPC_PAGES // factor),
            valve_slack=max(32, 200_000 // (8 * factor * factor)),
            valve_ratio=0.5 if factor == 1 else 0.8,
            scan_period_cycles=max(1, 2_000_000 // max(1, factor // 4)),
        )
        if overrides:
            base = base.replace(**overrides)
        return base
