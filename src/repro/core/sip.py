"""The SIP runtime — the enclave-side half of the scheme (Section 4.3).

At run time the instrumented sites execute the notification stub shown
in paper Figure 5::

    address = &array[st];
    if (BIT_MAP_CHECK == true)
        page_loadin_function(address);

The stub's mechanics (bitmap read, synchronous kernel-thread load,
notification round trip) are performed by
:meth:`repro.enclave.driver.SgxDriver.sip_prefetch`; this class is the
thin enclave-resident dispatcher that decides, per executed
instruction, whether the stub runs at all, and keeps the per-site hit
counters the evaluation uses.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.core.instrumentation import SipPlan

__all__ = ["SipRuntime"]


class SipRuntime:
    """Per-run dispatcher for a compiled :class:`SipPlan`."""

    def __init__(self, plan: SipPlan) -> None:
        self._plan = plan
        # A frozenset membership test is the hot-path operation; keep a
        # direct reference so the engine's inner loop stays cheap.
        self.instrumented = plan.instrumented
        self._site_executions: Counter = Counter()

    @property
    def plan(self) -> SipPlan:
        """The compile-time plan this runtime executes."""
        return self._plan

    def should_notify(self, instruction: int) -> bool:
        """True when ``instruction`` carries a preload notification."""
        if instruction in self.instrumented:
            self._site_executions[instruction] += 1
            return True
        return False

    @property
    def site_executions(self) -> Dict[int, int]:
        """How many times each instrumented site executed this run."""
        return dict(self._site_executions)

    @property
    def total_notifications(self) -> int:
        """Total stub executions this run (checks, not loads)."""
        return sum(self._site_executions.values())
