"""The SIP "compiler pass" (Sections 3.2 and 4.4).

In the prototype this is an LLVM pass over C/C++ sources; here the
"program" is a workload's set of named memory instructions, and the
pass is the decision procedure the paper actually evaluates:

1. profile the program with training input (:mod:`repro.core.profiler`);
2. for each instruction, compute the irregular-access (Class 3) ratio;
3. instrument every instruction whose ratio clears the threshold
   (Figure 9 finds ~5% to be the sweet spot) by attaching the
   23-line notification stub (``BIT_MAP_CHECK`` + ``page_loadin``).

Class 2-dominant instructions are deliberately left to DFP, and
Class 1-dominant instructions are not worth a check — both rules fall
out of the single ratio test, because a ratio below the threshold
means the instruction is dominated by Class 1 and/or Class 2 accesses.

The produced :class:`SipPlan` is the compile-time artifact: the set of
instrumented instruction ids plus the per-instruction profile evidence,
which also feeds the TCB study of paper Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.core.profiler import InstructionProfile, WorkloadProfile
from repro.errors import InstrumentationError

__all__ = ["SipPlan", "build_sip_plan"]


@dataclass(frozen=True)
class SipPlan:
    """Compile-time output of the SIP pass for one workload."""

    workload: str
    threshold: float
    #: Ids of the instructions that received a preload notification.
    instrumented: FrozenSet[int]
    #: The profiles the decision was based on (for reports and tests).
    evidence: Dict[int, InstructionProfile] = field(default_factory=dict)

    @property
    def instrumentation_points(self) -> int:
        """Number of notification sites inserted (paper Table 2)."""
        return len(self.instrumented)

    def is_instrumented(self, instruction: int) -> bool:
        """True if ``instruction`` carries a preload notification."""
        return instruction in self.instrumented

    def describe(self) -> str:
        """Human-readable summary of the plan."""
        lines = [
            f"SIP plan for {self.workload!r}: "
            f"{self.instrumentation_points} instrumentation point(s) "
            f"at threshold {self.threshold:.1%}"
        ]
        for instr in sorted(self.instrumented):
            prof = self.evidence.get(instr)
            if prof is None:
                lines.append(f"  instr {instr}")
            else:
                lines.append(
                    f"  instr {instr} ({prof.name}): "
                    f"irregular {prof.irregular_ratio:.1%} "
                    f"of {prof.total} accesses"
                )
        return "\n".join(lines)


def build_sip_plan(profile: WorkloadProfile, threshold: float) -> SipPlan:
    """Run the instrumentation decision over a workload profile.

    An instruction is instrumented when its profiled irregular-access
    ratio is at least ``threshold``.  Instructions that never executed
    during profiling are left untouched (there is no evidence either
    way, and an unexecuted site costs nothing to skip — the paper's
    conservative stance).
    """
    if not 0.0 <= threshold <= 1.0:
        raise InstrumentationError(
            f"threshold must be within [0, 1], got {threshold}"
        )
    instrumented = frozenset(
        instr
        for instr, prof in profile.instructions.items()
        if prof.total > 0 and prof.irregular_ratio >= threshold
    )
    return SipPlan(
        workload=profile.workload,
        threshold=threshold,
        instrumented=instrumented,
        evidence=dict(profile.instructions),
    )
