"""Scheme selection: baseline, DFP, DFP-stop, SIP, hybrid.

The paper evaluates five execution configurations; :func:`make_scheme`
builds each one from a :class:`~repro.core.config.SimConfig` (and, for
the SIP-bearing ones, a compiled :class:`~repro.core.instrumentation.SipPlan`):

================  ====================================================
``baseline``      vanilla SGX paging, no preloading
``dfp``           DFP without the safety valve (Figure 8's "DFP")
``dfp-stop``      DFP with the safety valve (Figure 8's "DFP-stop";
                  this is the default DFP configuration elsewhere)
``sip``           SIP only
``hybrid``        SIP + DFP-stop together (Section 5.4)
================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.core.instrumentation import SipPlan
from repro.core.sip import SipRuntime
from repro.errors import ConfigError

__all__ = ["Scheme", "make_scheme", "SCHEME_NAMES"]

SCHEME_NAMES: Tuple[str, ...] = ("baseline", "dfp", "dfp-stop", "sip", "hybrid")


@dataclass(frozen=True)
class Scheme:
    """One execution configuration.

    Immutable description; the per-run mutable objects (the DFP engine
    and SIP runtime) are built fresh by :meth:`build_dfp` /
    :meth:`build_sip` for every simulation so runs never share state.
    """

    name: str
    dfp_enabled: bool
    sip_enabled: bool
    dfp_config: Optional[DfpConfig] = None
    sip_plan: Optional[SipPlan] = None
    #: Optional factory for a non-default predictor (the ablation
    #: studies swap in :mod:`repro.core.alt_predictors` here); must
    #: return a fresh predictor per call.
    predictor_factory: Optional[Callable[[], object]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.dfp_enabled and self.dfp_config is None:
            raise ConfigError(f"scheme {self.name!r} enables DFP without a config")
        if self.sip_enabled and self.sip_plan is None:
            raise ConfigError(f"scheme {self.name!r} enables SIP without a plan")

    def build_dfp(self, *, metrics=None) -> Optional[DfpEngine]:
        """Fresh DFP engine for one run (None when DFP is off).

        ``metrics`` is an optional :class:`repro.obs.metrics.MetricsRegistry`
        the engine publishes its counters into.
        """
        if not self.dfp_enabled:
            return None
        assert self.dfp_config is not None
        predictor = self.predictor_factory() if self.predictor_factory else None
        return DfpEngine(self.dfp_config, predictor=predictor, metrics=metrics)

    def build_sip(self) -> Optional[SipRuntime]:
        """Fresh SIP runtime for one run (None when SIP is off)."""
        if not self.sip_enabled:
            return None
        assert self.sip_plan is not None
        return SipRuntime(self.sip_plan)


def make_scheme(
    name: str,
    config: SimConfig,
    *,
    sip_plan: Optional[SipPlan] = None,
) -> Scheme:
    """Build one of the paper's five schemes by name.

    ``sip_plan`` is required for ``sip`` and ``hybrid`` — compile one
    with :func:`repro.core.profiler.profile_workload` followed by
    :func:`repro.core.instrumentation.build_sip_plan`.
    """
    if name not in SCHEME_NAMES:
        raise ConfigError(
            f"unknown scheme {name!r}; expected one of {', '.join(SCHEME_NAMES)}"
        )
    needs_sip = name in ("sip", "hybrid")
    if needs_sip and sip_plan is None:
        raise ConfigError(f"scheme {name!r} requires a SIP plan")
    dfp_config: Optional[DfpConfig] = None
    if name in ("dfp", "dfp-stop", "hybrid"):
        base = DfpConfig.from_sim_config(config)
        if name == "dfp":
            dfp_config = DfpConfig(
                stream_list_length=base.stream_list_length,
                load_length=base.load_length,
                valve_enabled=False,
                valve_slack=base.valve_slack,
                valve_ratio=base.valve_ratio,
                track_backward=base.track_backward,
            )
        else:
            dfp_config = DfpConfig(
                stream_list_length=base.stream_list_length,
                load_length=base.load_length,
                valve_enabled=True,
                valve_slack=base.valve_slack,
                valve_ratio=base.valve_ratio,
                track_backward=base.track_backward,
            )
    return Scheme(
        name=name,
        dfp_enabled=dfp_config is not None,
        sip_enabled=needs_sip,
        dfp_config=dfp_config,
        sip_plan=sip_plan if needs_sip else None,
    )
