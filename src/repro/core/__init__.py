"""Core contribution of the paper: the two preloading schemes.

* :mod:`repro.core.config` — cost model and simulation configuration.
* :mod:`repro.core.predictor` — the multiple-stream predictor
  (paper Algorithm 1) used by DFP and by the SIP classifier.
* :mod:`repro.core.dfp` — dynamic fault-history based preloading.
* :mod:`repro.core.classify` — Class 1/2/3 access classification.
* :mod:`repro.core.profiler` — PGO-style profiling runs for SIP.
* :mod:`repro.core.instrumentation` — the SIP "compiler pass".
* :mod:`repro.core.sip` — the SIP runtime (bitmap check + page_loadin).
* :mod:`repro.core.schemes` — scheme factory (baseline/DFP/SIP/hybrid).
"""

from repro.core.config import CostModel, SimConfig
from repro.core.predictor import MultiStreamPredictor, StreamEntry
from repro.core.dfp import DfpEngine, DfpConfig
from repro.core.classify import AccessClass, StreamClassifier
from repro.core.profiler import InstructionProfile, WorkloadProfile, profile_workload
from repro.core.instrumentation import SipPlan, build_sip_plan
from repro.core.sip import SipRuntime
from repro.core.schemes import Scheme, make_scheme, SCHEME_NAMES

__all__ = [
    "CostModel",
    "SimConfig",
    "MultiStreamPredictor",
    "StreamEntry",
    "DfpEngine",
    "DfpConfig",
    "AccessClass",
    "StreamClassifier",
    "InstructionProfile",
    "WorkloadProfile",
    "profile_workload",
    "SipPlan",
    "build_sip_plan",
    "SipRuntime",
    "Scheme",
    "make_scheme",
    "SCHEME_NAMES",
]
