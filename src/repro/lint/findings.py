"""Core types of the ``repro-lint`` static-analysis pass.

The checker is deliberately small: a :class:`Finding` record, a
visitor base class (:class:`LintRule`) and a registry mapping rule
codes to rule classes.  Each rule is one :class:`ast.NodeVisitor`
subclass that appends findings as it walks a module's AST; the runner
(:mod:`repro.lint.runner`) owns file discovery, pragma suppression and
output formatting.

Rules are *repo-specific by design* — they encode invariants the paper
states but Python cannot (page/cycle denomination, determinism,
config immutability), complementing a generic style linter rather than
replacing one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Dict, List, Type

__all__ = ["Finding", "LintRule", "RULES", "register_rule", "rule_catalog"]

#: Code used for files the checker cannot parse at all.
PARSE_ERROR_CODE = "RL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to ``file:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class LintRule(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set the class attributes, implement ``visit_*`` methods
    and call :meth:`report` for each violation.  A fresh instance is
    created per file, so per-file state (import aliases, function
    nesting) can live on ``self``.
    """

    #: Short error code, e.g. ``"RL001"``.
    code: ClassVar[str] = ""
    #: One-word rule name used in listings.
    name: ClassVar[str] = ""
    #: One-line description shown by ``lint --list-rules``.
    description: ClassVar[str] = ""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.findings: List[Finding] = []

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        """Whether this rule should run on ``path`` at all.

        Rules override this to carve out structural exemptions (e.g.
        RL001 never applies to ``units.py`` — that module *is* the
        single place raw page arithmetic belongs).
        """
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation at ``node``'s location."""
        self.findings.append(
            Finding(
                path=str(self.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message,
            )
        )

    def run(self, tree: ast.Module) -> List[Finding]:
        """Walk ``tree`` and return the findings collected."""
        self.visit(tree)
        return self.findings


#: Registry of all known rules, keyed by code (``RL001`` → class).
RULES: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to :data:`RULES`."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def rule_catalog() -> List[Dict[str, str]]:
    """Stable listing of registered rules (for ``--list-rules``)."""
    return [
        {"code": code, "name": rule.name, "description": rule.description}
        for code, rule in sorted(RULES.items())
    ]
