"""Whole-program view for the deep lint pass: AST cache, import + call graphs.

The per-file rules (RL001–RL010) see one module at a time, which is
exactly why they miss the bugs that threatened PRs 3–5: a seed minted
in ``sweep.py`` and consumed in ``parallel.py``, a telemetry dump
crossing the process boundary.  This module builds the shared
substrate the RL100-series rules (:mod:`repro.lint.deep`) analyse:

* :class:`ASTCache` — every file is read and parsed **once** per lint
  invocation, shared between the per-file rules and the deep pass (and
  countable, so the runner can report how much parsing one pass cost);
* :class:`ModuleInfo` — one parsed module with its import bindings
  (local name → fully qualified target) and its top-level functions
  and methods, keyed by local qualified name (``f``, ``Cls.m``);
* :class:`ProgramGraph` — the whole-tree view: module registry,
  name resolution for call expressions (through ``import``/
  ``from … import`` aliases and package re-exports), function lookup
  across module boundaries, and the import/call edge sets.

Resolution is deliberately best-effort and *static*: nothing is ever
imported or executed, so the graph can be built over broken or
fixture trees, and a name that cannot be resolved simply yields
``None`` — the taint engine treats that as "opaque", never as an
error.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError

__all__ = [
    "ASTCache",
    "ModuleInfo",
    "ProgramGraph",
    "module_name_for",
]


class ASTCache:
    """Parse each file at most once; share ``(source, tree)`` pairs.

    The cache is the single parsing authority for one lint invocation:
    the per-file rule pass and the whole-program graph both read
    through it, so a ``repro lint --deep src tests`` run parses every
    file exactly once no matter how many rules look at it.
    ``parse_count`` is exposed so the runner can report the work done.
    """

    def __init__(self) -> None:
        self._sources: Dict[Path, str] = {}
        self._trees: Dict[Path, Optional[ast.Module]] = {}
        self._errors: Dict[Path, Optional[SyntaxError]] = {}
        #: Number of files actually parsed (cache misses).
        self.parse_count = 0

    def load(
        self, path: Path
    ) -> Tuple[str, Optional[ast.Module], Optional[SyntaxError]]:
        """Source, parsed tree (or None) and syntax error (or None).

        An unreadable file raises :class:`~repro.errors.LintError`;
        an unparsable one is cached with its :class:`SyntaxError` so
        the runner can emit its RL000 finding without re-parsing.
        """
        key = Path(path)
        if key in self._sources:
            return self._sources[key], self._trees[key], self._errors[key]
        try:
            source = key.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {key}: {exc}") from exc
        tree: Optional[ast.Module] = None
        error: Optional[SyntaxError] = None
        try:
            tree = ast.parse(source, filename=str(key))
        except SyntaxError as exc:
            error = exc
        self.parse_count += 1
        self._sources[key] = source
        self._trees[key] = tree
        self._errors[key] = error
        return source, tree, error

    def source(self, path: Path) -> str:
        """The cached source of ``path`` (loading it if needed)."""
        return self.load(path)[0]


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from the package layout.

    Walks up through directories that carry an ``__init__.py`` — the
    same rule the import system applies — so ``src/repro/sim/sweep.py``
    maps to ``repro.sim.sweep`` regardless of which root the linter was
    pointed at, and a loose script maps to its stem.
    """
    # Absolute anchor: a relative path inside a package directory would
    # otherwise walk ``Path(".").parent == Path(".")`` forever.
    path = Path(path).absolute()
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists() and parent != parent.parent:
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


@dataclass
class ModuleInfo:
    """One parsed module and its statically derived facts."""

    path: Path
    name: str
    tree: ast.Module
    #: Local binding → fully qualified target.  ``import a.b`` binds
    #: ``a`` → ``a``; ``import a.b as c`` binds ``c`` → ``a.b``;
    #: ``from a.b import c as d`` binds ``d`` → ``a.b.c``.
    imports: Dict[str, str] = field(default_factory=dict)
    #: Top-level callables by local qualified name: ``f`` for a
    #: module-level function, ``Cls.m`` for a method.
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Top-level class names (so references to them resolve).
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)

    def qualify(self, local: str) -> str:
        """Fully qualified name of a local definition."""
        return f"{self.name}.{local}" if self.name else local


def _package_of(module: ModuleInfo) -> List[str]:
    """The package parts relative imports resolve against."""
    parts = module.name.split(".") if module.name else []
    if module.path.name != "__init__.py" and parts:
        parts = parts[:-1]
    return parts


def _collect_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    module.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    module.imports.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                package = _package_of(module)
                anchor = package[: len(package) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )


def _collect_definitions(module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = node  # type: ignore[assignment]
        elif isinstance(node, ast.ClassDef):
            module.classes[node.name] = node
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    module.functions[f"{node.name}.{item.name}"] = (
                        item  # type: ignore[assignment]
                    )


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class ProgramGraph:
    """The linked view of every module the deep pass can see.

    Built once per ``repro lint --deep`` invocation over all files
    under the given roots; rules then ask it to resolve call
    expressions to fully qualified names and to look function bodies
    up across module boundaries.
    """

    #: Depth bound when chasing package re-exports (``from x import y``
    #: in an ``__init__`` that itself re-exports).
    _REEXPORT_HOPS = 8

    def __init__(self, cache: Optional[ASTCache] = None) -> None:
        self.cache = cache if cache is not None else ASTCache()
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[Path, ModuleInfo] = {}

    @classmethod
    def build(
        cls, files: Iterable[Path], *, cache: Optional[ASTCache] = None
    ) -> "ProgramGraph":
        """Parse ``files`` (through ``cache``) and link the program."""
        graph = cls(cache)
        for path in files:
            graph.add_file(Path(path))
        return graph

    def add_file(self, path: Path) -> Optional[ModuleInfo]:
        """Parse and register one file; None when it does not parse."""
        if path in self.by_path:
            return self.by_path[path]
        _, tree, error = self.cache.load(path)
        if tree is None or error is not None:
            return None
        module = ModuleInfo(path=path, name=module_name_for(path), tree=tree)
        _collect_imports(module)
        _collect_definitions(module)
        self.by_path[path] = module
        # First-registered wins on a (pathological) name collision so
        # resolution stays deterministic across runs.
        self.modules.setdefault(module.name, module)
        return module

    # -- name resolution ---------------------------------------------

    def resolve_name(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[str]:
        """Fully qualified name a ``Name``/``Attribute`` chain denotes.

        Follows the module's import bindings (``from m import f`` makes
        a bare ``f`` denote ``m.f``) and falls back to the module's own
        top-level definitions.  Builtins and locals resolve to None —
        the caller decides what "unknown" means.
        """
        chain = _attribute_chain(node)
        if chain is None:
            return None
        root, rest = chain[0], chain[1:]
        target = module.imports.get(root)
        if target is not None:
            return ".".join([target] + rest)
        if root in module.functions or root in module.classes:
            return ".".join([module.qualify(root)] + rest)
        return None

    def _dealias(self, qualname: str) -> str:
        """Follow package re-exports until the name stops moving.

        ``repro.robust.FaultPlan`` reaches the symbol through the
        package ``__init__``; following its ``from repro.robust.faults
        import FaultPlan`` binding lands on the defining module, which
        is where the function body lives.
        """
        seen: Set[str] = set()
        for _ in range(self._REEXPORT_HOPS):
            if qualname in seen:
                break
            seen.add(qualname)
            parts = qualname.split(".")
            moved = False
            for split in range(len(parts) - 1, 0, -1):
                owner = self.modules.get(".".join(parts[:split]))
                if owner is None:
                    continue
                local = parts[split]
                target = owner.imports.get(local)
                if target is not None:
                    qualname = ".".join([target] + parts[split + 1 :])
                    moved = True
                break
            if not moved:
                break
        return qualname

    def resolve_function(
        self, qualname: str
    ) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
        """The defining module and AST node of ``qualname``, if known."""
        qualname = self._dealias(qualname)
        parts = qualname.split(".")
        for split in range(len(parts) - 1, 0, -1):
            owner = self.modules.get(".".join(parts[:split]))
            if owner is None:
                continue
            local = ".".join(parts[split:])
            func = owner.functions.get(local)
            if func is not None:
                return owner, func
            return None
        return None

    def resolve_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        """Qualified (de-aliased) name of a call's target, if static."""
        qualname = self.resolve_name(module, call.func)
        if qualname is None:
            return None
        return self._dealias(qualname)

    # -- edge views ---------------------------------------------------

    def import_edges(self) -> Dict[str, Set[str]]:
        """Module → set of modules it imports (program modules only)."""
        edges: Dict[str, Set[str]] = {}
        names = set(self.modules)
        for name, module in self.modules.items():
            targets: Set[str] = set()
            for qual in module.imports.values():
                parts = qual.split(".")
                for split in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:split])
                    if candidate in names:
                        targets.add(candidate)
                        break
            targets.discard(name)
            edges[name] = targets
        return edges

    def call_edges(self) -> Dict[str, Set[str]]:
        """Function → set of program functions it (statically) calls."""
        edges: Dict[str, Set[str]] = {}
        for module in self.modules.values():
            for local, func in module.functions.items():
                caller = module.qualify(local)
                callees: Set[str] = set()
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    target = self.resolve_call(module, node)
                    if target is not None and self.resolve_function(target):
                        callees.add(self._dealias(target))
                edges[caller] = callees
        return edges
