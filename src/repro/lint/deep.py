"""The RL100-series: whole-program rules over the import/call graph.

Where RL001–RL010 police one file at a time, these four rules follow
values *across* function and module boundaries — the class of bug that
actually threatened PRs 3–5 (a seed minted in ``sweep.py`` consumed in
``parallel.py``; telemetry dumps crossing the process boundary):

* **RL101** — seed provenance.  Every ``random.Random(x)`` must trace
  ``x`` back to an explicit seed parameter, a seed-named config field,
  or a constant — through any number of helper calls in any module.
  A seed derived from wall-clock, OS entropy or the global RNG breaks
  replay for every figure downstream of it.
* **RL102** — pickle safety.  Values shipped through a submission site
  (``run_jobs`` job lists, ``JobSpec``/``WorkloadSpec``/
  ``TelemetryConfig``/``FaultPlan`` construction) cross a process
  boundary; a lambda, closure, generator, lock or file handle reaching
  one fails at runtime, deep inside a worker, long after the mistake.
  Parent-side parameters (``on_result``, ``telemetry``, ``policy``)
  never cross the boundary and are exempt.
* **RL103** — wall-clock taint.  A value originating at ``time.time``/
  ``perf_counter``/``datetime.now`` must not reach a manifest dict, a
  digest, or a ``RunResult`` field: manifests are byte-reproducible by
  contract, and one timestamp breaks every ``repro report`` diff.  The
  ``exec_telemetry=`` manifest block is exempt — it is excluded from
  the integrity digest by design.
* **RL104** — iteration-order hazards.  Iterating a ``set`` (or a
  filesystem listing) in raw order while feeding a manifest, digest or
  emitted event/record list makes output bytes depend on hash seeds
  and directory order; such iterations must go through ``sorted()``.
  (Dicts iterate in insertion order since 3.7 and are exempt unless
  converted to a set.)

All four are *may*-analyses tuned for low false positives: an
unresolvable value is opaque, and opaque alone never trips RL102–104
(RL101 reports it as "cannot trace", which is precisely that rule's
contract).  Suppression pragmas and ``--select``/``--ignore`` work on
these codes exactly as on the per-file rules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.graph import ModuleInfo, ProgramGraph
from repro.lint.taint import Context, Tag, TaintEngine

__all__ = [
    "DeepRule",
    "DEEP_RULES",
    "register_deep_rule",
    "deep_rule_catalog",
    "run_deep_rules",
    "SeedProvenance",
    "PickleSafety",
    "WallClockTaint",
    "UnorderedIteration",
]

#: Names whose contents end up in reproducible output (manifests,
#: digests, emitted event/record lists).
_SINK_NAME = re.compile(r"manifest|digest|event|record", re.IGNORECASE)

#: Qualified-name suffixes of the manifest/digest sink callables.
_MANIFEST_SINKS = (".build_manifest", ".manifest_digest")

#: Argument keywords of manifest sinks that are exempt from RL103/104:
#: the execution-telemetry block is excluded from the integrity digest
#: by design, so wall-clock inside it is sanctioned.
_SINK_EXEMPT_KWARGS = {"exec_telemetry"}

_NONDET_SEED = frozenset({Tag.WALL_CLOCK, Tag.OS_ENTROPY, Tag.GLOBAL_RNG})
_GOOD_SEED = frozenset({Tag.SEED, Tag.CONST})
_UNPICKLABLE = frozenset(
    {Tag.LAMBDA, Tag.GENERATOR, Tag.NESTED_FUNC, Tag.LOCK, Tag.FILE_HANDLE}
)

#: Submission-site suffixes → which arguments cross the process
#: boundary.  ``None`` means every argument; a set names positional
#: indices and keywords that are shipped (the rest stay parent-side).
_SHIP_SITES: Dict[str, Optional[Set[object]]] = {
    ".run_jobs": {0, "specs"},
    ".JobSpec": None,
    ".WorkloadSpec": None,
    ".TelemetryConfig": None,
    ".FaultPlan": None,
}


def _tag_names(tags: FrozenSet[Tag]) -> str:
    return ", ".join(sorted(str(tag) for tag in tags))


def _walk_scope(statements: List[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node of one scope, *excluding* nested scopes.

    Nested function/class bodies get their own analysis context (see
    :meth:`DeepRule._scopes`), so walking into them here would evaluate
    their expressions against the wrong environment.
    """
    stack: List[ast.AST] = list(statements)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


class DeepRule:
    """Base class for one whole-program rule.

    One instance analyses the entire :class:`ProgramGraph`; findings
    are anchored to the file each offending expression lives in, so
    pragma suppression and ``--changed`` filtering work per file
    exactly as for the per-file rules.
    """

    code = ""
    name = ""
    description = ""

    def __init__(self, graph: ProgramGraph, engine: TaintEngine) -> None:
        self.graph = graph
        self.engine = engine
        self.findings: List[Finding] = []

    def report(self, module: ModuleInfo, node: ast.AST, message: str) -> None:
        finding = Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )
        if finding not in self.findings:
            self.findings.append(finding)

    def _scopes(self) -> Iterator[Tuple[ModuleInfo, Context, List[ast.stmt]]]:
        """Every analysable scope: module bodies, functions, methods,
        and functions nested inside them."""
        for module in self.graph.modules.values():
            yield module, self.engine.module_context(module), module.tree.body
            for local, func in module.functions.items():
                cls = local.rsplit(".", 1)[0] if "." in local else None
                ctx = self.engine.function_context(module, func, cls=cls)
                yield module, ctx, func.body
                yield from self._nested_scopes(module, func)

    def _nested_scopes(
        self, module: ModuleInfo, outer: ast.FunctionDef
    ) -> Iterator[Tuple[ModuleInfo, Context, List[ast.stmt]]]:
        stack: List[ast.stmt] = list(outer.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx = self.engine.function_context(module, stmt)
                yield module, ctx, stmt.body
                stack.extend(stmt.body)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                else:
                    stack.extend(
                        c for c in ast.walk(child)
                        if isinstance(c, ast.stmt)
                    )

    def run(self) -> List[Finding]:
        for module, ctx, body in self._scopes():
            self.visit_scope(module, ctx, body)
        return sorted(self.findings)

    def visit_scope(
        self, module: ModuleInfo, ctx: Context, body: List[ast.stmt]
    ) -> None:
        raise NotImplementedError


#: Registry of whole-program rules, keyed by code (``RL101`` → class).
DEEP_RULES: Dict[str, Type[DeepRule]] = {}


def register_deep_rule(cls: Type[DeepRule]) -> Type[DeepRule]:
    """Class decorator adding a deep rule to :data:`DEEP_RULES`."""
    if not cls.code:
        raise ValueError(f"deep rule {cls.__name__} has no code")
    if cls.code in DEEP_RULES:
        raise ValueError(f"duplicate deep rule code {cls.code}")
    DEEP_RULES[cls.code] = cls
    return cls


def deep_rule_catalog() -> List[Dict[str, str]]:
    """Stable listing of the registered deep rules."""
    return [
        {"code": code, "name": rule.name, "description": rule.description}
        for code, rule in sorted(DEEP_RULES.items())
    ]


def run_deep_rules(
    files: List[Path],
    *,
    codes: Optional[List[str]] = None,
    cache=None,
) -> List[Finding]:
    """Build the program graph over ``files`` and run the deep rules.

    ``codes`` restricts which RL100-series rules run (default: all).
    The ``cache`` (an :class:`~repro.lint.graph.ASTCache`) is shared
    with the per-file pass so nothing is parsed twice.
    """
    graph = ProgramGraph.build(files, cache=cache)
    engine = TaintEngine(graph)
    selected = (
        [DEEP_RULES[code] for code in codes]
        if codes is not None
        else [DEEP_RULES[code] for code in sorted(DEEP_RULES)]
    )
    findings: List[Finding] = []
    for rule_cls in selected:
        findings.extend(rule_cls(graph, engine).run())
    return sorted(set(findings))


@register_deep_rule
class SeedProvenance(DeepRule):
    """RL101: every RNG construction traces to an explicit seed."""

    code = "RL101"
    name = "seed-provenance"
    description = (
        "random.Random(x) whose seed cannot be traced — across function "
        "and module boundaries — to an explicit seed parameter, "
        "seed-named config field or constant, or traces to wall-clock / "
        "OS entropy / the global RNG"
    )

    def visit_scope(
        self, module: ModuleInfo, ctx: Context, body: List[ast.stmt]
    ) -> None:
        for node in _walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            qual = self.graph.resolve_call(module, node)
            if qual != "random.Random":
                continue
            if not node.args and not node.keywords:
                continue  # the unseeded form is per-file RL002's finding
            seed_expr = (
                node.args[0] if node.args else node.keywords[0].value
            )
            tags = self.engine.origins(seed_expr, ctx)
            bad = tags & _NONDET_SEED
            if bad:
                self.report(
                    module,
                    node,
                    f"RNG seed traces to a non-deterministic source "
                    f"({_tag_names(bad)}); derive it from an explicit "
                    "seed parameter or config seed field instead",
                )
            elif not tags & _GOOD_SEED:
                self.report(
                    module,
                    node,
                    "RNG seed cannot be traced to an explicit seed "
                    "parameter, seed-named config field or constant "
                    f"across module boundaries (origins: {_tag_names(tags)})",
                )


@register_deep_rule
class PickleSafety(DeepRule):
    """RL102: values crossing a submission site must be picklable."""

    code = "RL102"
    name = "pickle-safety"
    description = (
        "lambda / closure / generator / lock / file handle reaching a "
        "run_jobs, JobSpec, WorkloadSpec, TelemetryConfig or FaultPlan "
        "submission site — these values cross a process boundary and "
        "fail to pickle at runtime"
    )

    @staticmethod
    def _site_for(qual: str) -> Optional[Tuple[str, Optional[Set[object]]]]:
        if not qual.startswith("repro."):
            return None
        for suffix, shipped in _SHIP_SITES.items():
            if qual.endswith(suffix):
                return suffix.lstrip("."), shipped
        return None

    def visit_scope(
        self, module: ModuleInfo, ctx: Context, body: List[ast.stmt]
    ) -> None:
        for node in _walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            qual = self.graph.resolve_call(module, node)
            if qual is None:
                continue
            site = self._site_for(qual)
            if site is None:
                continue
            site_name, shipped = site
            for position, arg in enumerate(node.args):
                if shipped is not None and position not in shipped:
                    continue
                self._check(module, ctx, site_name, arg)
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                if shipped is not None and keyword.arg not in shipped:
                    continue
                self._check(module, ctx, site_name, keyword.value)

    def _check(
        self, module: ModuleInfo, ctx: Context, site: str, arg: ast.expr
    ) -> None:
        tags = self.engine.origins(arg, ctx)
        bad = tags & _UNPICKLABLE
        if bad:
            self.report(
                module,
                arg,
                f"value shipped through {site} is not statically "
                f"picklable ({_tag_names(bad)}); submissions cross a "
                "process boundary — pass a module-level callable or a "
                "plain-data spec instead",
            )


@register_deep_rule
class WallClockTaint(DeepRule):
    """RL103: wall-clock values must not reach reproducible output."""

    code = "RL103"
    name = "wall-clock-taint"
    description = (
        "value originating at time.time/perf_counter/datetime.now "
        "flowing into a manifest dict, manifest digest or RunResult "
        "field — manifests are byte-reproducible by contract "
        "(exec_telemetry blocks are exempt: excluded from the digest)"
    )

    def visit_scope(
        self, module: ModuleInfo, ctx: Context, body: List[ast.stmt]
    ) -> None:
        for node in _walk_scope(body):
            if isinstance(node, ast.Call):
                self._check_call(module, ctx, node)
            elif isinstance(node, ast.Assign):
                self._check_assign(module, ctx, node)

    def _flag(self, module: ModuleInfo, node: ast.AST, what: str) -> None:
        self.report(
            module,
            node,
            f"wall-clock tainted value flows into {what}; manifests, "
            "digests and results must be wall-clock free (keep "
            "timestamps in telemetry spans, which are digest-exempt)",
        )

    def _check_call(
        self, module: ModuleInfo, ctx: Context, node: ast.Call
    ) -> None:
        qual = self.graph.resolve_call(module, node)
        if qual is None:
            return
        if qual.endswith(_MANIFEST_SINKS):
            what = f"{qual.rsplit('.', 1)[-1]}()"
        elif qual.endswith(".RunResult"):
            what = "a RunResult field"
        else:
            return
        for arg in node.args:
            if Tag.WALL_CLOCK in self.engine.origins(arg, ctx):
                self._flag(module, arg, what)
        for keyword in node.keywords:
            if keyword.arg in _SINK_EXEMPT_KWARGS:
                continue
            if Tag.WALL_CLOCK in self.engine.origins(keyword.value, ctx):
                self._flag(module, keyword.value, what)

    def _check_assign(
        self, module: ModuleInfo, ctx: Context, node: ast.Assign
    ) -> None:
        for target in node.targets:
            name: Optional[str] = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
            if name is None or not re.search(r"manifest", name, re.I):
                continue
            if Tag.WALL_CLOCK in self.engine.origins(node.value, ctx):
                self._flag(module, node, f"manifest variable {name!r}")
            break


@register_deep_rule
class UnorderedIteration(DeepRule):
    """RL104: unordered iteration must not feed reproducible output."""

    code = "RL104"
    name = "unordered-iteration"
    description = (
        "iteration over an unordered collection (set, filesystem "
        "listing) feeding a manifest, digest or emitted event/record "
        "list without sorted() — output bytes would depend on hash "
        "seeds and directory order"
    )

    def visit_scope(
        self, module: ModuleInfo, ctx: Context, body: List[ast.stmt]
    ) -> None:
        for node in _walk_scope(body):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_loop(module, ctx, node)
            elif isinstance(node, ast.Assign):
                self._check_assign(module, ctx, node)
            elif isinstance(node, ast.Call):
                self._check_sink_call(module, ctx, node)

    def _unordered(self, ctx: Context, expr: ast.expr) -> bool:
        return Tag.UNORDERED in self.engine.origins(expr, ctx)

    def _flag(self, module: ModuleInfo, node: ast.AST, what: str) -> None:
        self.report(
            module,
            node,
            f"iteration over an unordered collection feeds {what}; wrap "
            "the iterable in sorted(...) so emitted order is stable "
            "across runs and hash seeds",
        )

    def _check_loop(
        self, module: ModuleInfo, ctx: Context, node: ast.For
    ) -> None:
        if not self._unordered(ctx, node.iter):
            return
        sink = self._body_sink(module, node.body)
        if sink is not None:
            self._flag(module, node, sink)

    def _body_sink(
        self, module: ModuleInfo, body: List[ast.stmt]
    ) -> Optional[str]:
        """A reproducible-output sink written to inside a loop body."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in ("append", "extend", "insert", "add")
                        and isinstance(func.value, ast.Name)
                        and _SINK_NAME.search(func.value.id)
                    ):
                        return f"{func.value.id!r}"
                    qual = self.graph.resolve_call(module, node)
                    if qual is not None and qual.endswith(_MANIFEST_SINKS):
                        return f"{qual.rsplit('.', 1)[-1]}()"
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and _SINK_NAME.search(target.value.id)
                        ):
                            return f"{target.value.id!r}"
        return None

    def _check_assign(
        self, module: ModuleInfo, ctx: Context, node: ast.Assign
    ) -> None:
        for target in node.targets:
            name: Optional[str] = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
            if name is None or not _SINK_NAME.search(name):
                continue
            if isinstance(
                node.value, (ast.ListComp, ast.GeneratorExp)
            ) and any(
                self._unordered(ctx, gen.iter)
                for gen in node.value.generators
            ):
                self._flag(module, node, f"{name!r}")
            break

    def _check_sink_call(
        self, module: ModuleInfo, ctx: Context, node: ast.Call
    ) -> None:
        qual = self.graph.resolve_call(module, node)
        if qual is None or not qual.endswith(_MANIFEST_SINKS):
            return
        what = f"{qual.rsplit('.', 1)[-1]}()"
        for arg in node.args:
            if isinstance(arg, (ast.ListComp, ast.GeneratorExp)) and any(
                self._unordered(ctx, gen.iter) for gen in arg.generators
            ):
                self._flag(module, arg, what)
        for keyword in node.keywords:
            if keyword.arg in _SINK_EXEMPT_KWARGS:
                continue
            value = keyword.value
            if isinstance(value, (ast.ListComp, ast.GeneratorExp)) and any(
                self._unordered(ctx, gen.iter) for gen in value.generators
            ):
                self._flag(module, value, what)
