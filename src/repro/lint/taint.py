"""The deep pass's dataflow engine: origin tags over the program graph.

One engine serves all four RL100-series rules.  For any expression it
computes a set of **origin tags** — where the value could have come
from — by walking assignments inside the enclosing function, import
bindings, and (the cross-module part) the return expressions of every
program function the value passed through, resolved via
:class:`~repro.lint.graph.ProgramGraph` with the caller's arguments
substituted for the callee's parameters.

Tags are deliberately coarse.  The rules only need to answer four
questions:

* does this seed trace back to an explicit seed parameter / config
  field / constant, or to wall-clock / OS entropy?  (RL101)
* can this value be pickled — or is it a lambda, a closure, a
  generator, a lock, a file handle?  (RL102)
* did wall-clock leak into it?  (RL103)
* does it iterate in an unordered collection's order?  (RL104)

The analysis is *may*-analysis with union semantics: a variable
assigned on two paths carries both origins, an unresolvable call
propagates its arguments' hazard tags and adds :data:`Tag.OPAQUE`.
It never executes or imports anything, and depth/recursion guards make
it total on arbitrary (including adversarial) input trees.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.graph import ModuleInfo, ProgramGraph

__all__ = ["Tag", "TaintEngine", "Context", "SEED_NAME"]


class Tag(Enum):
    """Coarse origin classes the deep rules reason about."""

    #: Explicit seed: a ``seed``-named parameter or attribute.
    SEED = "seed"
    #: A literal constant (deterministic by construction).
    CONST = "const"
    #: ``time.time``/``perf_counter``/``datetime.now`` and friends.
    WALL_CLOCK = "wall-clock"
    #: ``os.urandom``/``uuid.uuid4``/``secrets``/pids.
    OS_ENTROPY = "os-entropy"
    #: A draw from the global (unseeded) ``random`` module.
    GLOBAL_RNG = "global-rng"
    #: Iterates in no stable order: sets, filesystem listings.
    UNORDERED = "unordered"
    #: Unpicklable shapes (RL102).
    LAMBDA = "lambda"
    GENERATOR = "generator"
    NESTED_FUNC = "nested-function"
    LOCK = "lock"
    FILE_HANDLE = "file-handle"
    #: Analysis gave up: unknown name, unresolvable call, depth bound.
    OPAQUE = "opaque"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Parameter/attribute names treated as explicit seeds.
SEED_NAME = re.compile(r"seed", re.IGNORECASE)

#: Hazard tags that survive passage through an unresolvable call: a
#: deterministic transform of wall-clock is still wall-clock, but an
#: unknown transform of a seed is not itself evidence of seeding.
_STICKY = frozenset(
    {
        Tag.SEED,
        Tag.WALL_CLOCK,
        Tag.OS_ENTROPY,
        Tag.GLOBAL_RNG,
        Tag.LAMBDA,
        Tag.GENERATOR,
        Tag.NESTED_FUNC,
        Tag.LOCK,
        Tag.FILE_HANDLE,
    }
)

#: Fully qualified callables with known origin classes.
_SOURCE_TABLE: Dict[str, FrozenSet[Tag]] = {}


def _register(tags: FrozenSet[Tag], *names: str) -> None:
    for name in names:
        _SOURCE_TABLE[name] = tags


_register(
    frozenset({Tag.WALL_CLOCK}),
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)
_register(
    frozenset({Tag.OS_ENTROPY}),
    "os.urandom",
    "os.getrandom",
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
    "random.SystemRandom",
)
_register(
    frozenset({Tag.LOCK}),
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
)
_register(
    frozenset({Tag.UNORDERED}),
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
)

#: Global-RNG draws (the cross-module complement of per-file RL002).
_GLOBAL_RNG_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}
_register(
    frozenset({Tag.GLOBAL_RNG}),
    *(f"random.{name}" for name in _GLOBAL_RNG_FUNCS),
)

#: Builtins that forward their arguments' origins unchanged.
_TRANSPARENT_BUILTINS = {
    "int", "float", "str", "bytes", "bool", "abs", "round", "hash",
    "repr", "format", "list", "tuple", "iter", "reversed", "enumerate",
    "zip", "map", "filter",
}

#: Builtins whose result is order-insensitive: they absorb UNORDERED.
_ORDER_ABSORBING_BUILTINS = {"sorted", "min", "max", "sum", "len", "any", "all"}

#: Attribute calls that *produce* unordered collections regardless of
#: the receiver (path/directory listings, set algebra).
_UNORDERED_METHODS = {
    "iterdir", "glob", "rglob",
    "union", "intersection", "difference", "symmetric_difference",
}


@dataclass
class Context:
    """Everything needed to evaluate expressions inside one function."""

    module: ModuleInfo
    #: name → every expression assigned to it in this scope.
    env: Dict[str, List[ast.expr]] = field(default_factory=dict)
    #: parameter name → origin tags (substituted at call sites).
    params: Dict[str, FrozenSet[Tag]] = field(default_factory=dict)
    #: functions/lambdas *defined inside* this scope (closures).
    local_funcs: Set[str] = field(default_factory=set)
    #: enclosing class name, so ``self.m()`` resolves to ``Cls.m``.
    cls: Optional[str] = None
    depth: int = 0


def _scope_env(body: List[ast.stmt]) -> Tuple[Dict[str, List[ast.expr]], Set[str]]:
    """Assignments and nested-callable names of one function scope.

    Walks the statements of the scope but not into nested function or
    class bodies (their assignments are not this scope's), recording
    every expression each simple name is bound to — union semantics,
    not flow-sensitivity — plus the names of nested defs and lambdas
    (closure references, which RL102 treats as unpicklable).
    """
    env: Dict[str, List[ast.expr]] = {}
    local_funcs: Set[str] = set()

    def bind(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            env.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Losing per-element precision is fine: union semantics.
                bind(element, value)
        elif isinstance(target, ast.Starred):
            bind(target.value, value)

    def walk(statements: List[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_funcs.add(stmt.name)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    bind(target, stmt.value)
                if isinstance(stmt.value, ast.Lambda):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            local_funcs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                bind(stmt.target, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                bind(stmt.target, stmt.value)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                bind(stmt.target, stmt.iter)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        bind(item.optional_vars, item.context_expr)
            # Recurse into nested *statement* bodies of this scope.
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list) and not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    walk(inner)
            for handler in getattr(stmt, "handlers", []):
                walk(handler.body)

    walk(body)
    return env, local_funcs


class TaintEngine:
    """Origin analysis over one :class:`~repro.lint.graph.ProgramGraph`."""

    #: Bound on cross-function summary chains; past it → OPAQUE.
    MAX_DEPTH = 8

    def __init__(self, graph: ProgramGraph) -> None:
        self.graph = graph
        self._summaries: Dict[Tuple[str, FrozenSet], FrozenSet[Tag]] = {}
        self._in_progress: Set[str] = set()

    # -- contexts -----------------------------------------------------

    def function_context(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef,
        *,
        cls: Optional[str] = None,
        param_tags: Optional[Dict[str, FrozenSet[Tag]]] = None,
        depth: int = 0,
    ) -> Context:
        """Context for analysing inside ``func``.

        Without explicit ``param_tags``, parameters are classified by
        name: seed-named ones are :data:`Tag.SEED`, the rest are
        :data:`Tag.OPAQUE` (we do not know what callers pass).
        """
        env, local_funcs = _scope_env(func.body)
        params: Dict[str, FrozenSet[Tag]] = {}
        args = func.args
        every = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for arg in every:
            default = (
                frozenset({Tag.SEED})
                if SEED_NAME.search(arg.arg)
                else frozenset({Tag.OPAQUE})
            )
            params[arg.arg] = (
                param_tags.get(arg.arg, default) if param_tags else default
            )
        return Context(
            module=module,
            env=env,
            params=params,
            local_funcs=local_funcs,
            cls=cls,
            depth=depth,
        )

    def module_context(self, module: ModuleInfo) -> Context:
        """Context for module-level statements."""
        env, local_funcs = _scope_env(module.tree.body)
        return Context(module=module, env=env, local_funcs=local_funcs)

    # -- the evaluator ------------------------------------------------

    def origins(self, node: ast.AST, ctx: Context) -> FrozenSet[Tag]:
        """Origin tags of one expression (total, never raises)."""
        return self._eval(node, ctx, visiting=frozenset())

    def _eval(
        self, node: ast.AST, ctx: Context, visiting: FrozenSet[str]
    ) -> FrozenSet[Tag]:
        if ctx.depth > self.MAX_DEPTH:
            return frozenset({Tag.OPAQUE})
        if isinstance(node, ast.Constant):
            return frozenset({Tag.CONST})
        if isinstance(node, ast.Name):
            return self._eval_name(node, ctx, visiting)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, ctx)
        if isinstance(node, ast.Call):
            return self._eval_call(node, ctx, visiting)
        if isinstance(node, ast.Lambda):
            return frozenset({Tag.LAMBDA})
        if isinstance(node, ast.GeneratorExp):
            return frozenset({Tag.GENERATOR}) | self._comp_iters(
                node, ctx, visiting
            )
        if isinstance(node, ast.SetComp):
            return frozenset({Tag.UNORDERED}) | self._comp_iters(
                node, ctx, visiting
            )
        if isinstance(node, (ast.ListComp, ast.DictComp)):
            return self._comp_iters(node, ctx, visiting)
        if isinstance(node, ast.Set):
            return frozenset({Tag.UNORDERED}) | self._union(
                node.elts, ctx, visiting
            )
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._union(node.elts, ctx, visiting)
        if isinstance(node, ast.Dict):
            values = [v for v in node.values if v is not None]
            keys = [k for k in node.keys if k is not None]
            return self._union(keys + values, ctx, visiting)
        if isinstance(node, ast.JoinedStr):
            return frozenset({Tag.CONST}) | self._union(
                [fv.value for fv in node.values
                 if isinstance(fv, ast.FormattedValue)],
                ctx,
                visiting,
            )
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, ctx, visiting)
        if isinstance(node, ast.BinOp):
            return self._union([node.left, node.right], ctx, visiting)
        if isinstance(node, ast.BoolOp):
            return self._union(node.values, ctx, visiting)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, ctx, visiting)
        if isinstance(node, ast.Compare):
            # A comparison result is a bool: order/source hazards of the
            # operands do not survive into it.
            return frozenset({Tag.CONST})
        if isinstance(node, ast.IfExp):
            return self._union([node.body, node.orelse], ctx, visiting)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value, ctx, visiting)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, ctx, visiting)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, ctx, visiting)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            if node.value is None:
                return frozenset({Tag.CONST})
            return self._eval(node.value, ctx, visiting)
        if isinstance(node, ast.NamedExpr):
            return self._eval(node.value, ctx, visiting)
        return frozenset({Tag.OPAQUE})

    def _union(
        self,
        nodes: List[ast.expr],
        ctx: Context,
        visiting: FrozenSet[str],
    ) -> FrozenSet[Tag]:
        tags: Set[Tag] = set()
        for node in nodes:
            tags |= self._eval(node, ctx, visiting)
        return frozenset(tags) if tags else frozenset({Tag.CONST})

    def _comp_iters(
        self, node: ast.AST, ctx: Context, visiting: FrozenSet[str]
    ) -> FrozenSet[Tag]:
        iters = [gen.iter for gen in getattr(node, "generators", [])]
        return self._union(iters, ctx, visiting)

    def _eval_name(
        self, node: ast.Name, ctx: Context, visiting: FrozenSet[str]
    ) -> FrozenSet[Tag]:
        name = node.id
        if name in ctx.local_funcs:
            return frozenset({Tag.NESTED_FUNC})
        if name in ctx.params:
            return ctx.params[name]
        if name in ctx.env and name not in visiting:
            inner = visiting | {name}
            tags: Set[Tag] = set()
            for value in ctx.env[name]:
                tags |= self._eval(value, ctx, inner)
            return frozenset(tags) if tags else frozenset({Tag.OPAQUE})
        if SEED_NAME.search(name) and name not in ctx.env:
            # A free seed-named variable (module global, closure cell).
            return frozenset({Tag.SEED})
        qual = self.graph.resolve_name(ctx.module, node)
        if qual is not None and self.graph.resolve_function(qual) is not None:
            # A reference to a module-level function: picklable by name.
            return frozenset({Tag.CONST})
        return frozenset({Tag.OPAQUE})

    def _eval_attribute(self, node: ast.Attribute, ctx: Context) -> FrozenSet[Tag]:
        if SEED_NAME.search(node.attr):
            return frozenset({Tag.SEED})
        qual = self.graph.resolve_name(ctx.module, node)
        if qual is not None:
            known = _SOURCE_TABLE.get(qual)
            if known is not None:
                return known
            if self.graph.resolve_function(qual) is not None:
                return frozenset({Tag.CONST})
        return frozenset({Tag.OPAQUE})

    # -- calls --------------------------------------------------------

    def _eval_call(
        self, node: ast.Call, ctx: Context, visiting: FrozenSet[str]
    ) -> FrozenSet[Tag]:
        func = node.func
        arg_nodes = list(node.args) + [
            kw.value for kw in node.keywords if kw.value is not None
        ]
        # Builtins (only when the name is not locally rebound).
        if isinstance(func, ast.Name) and not self._is_bound(func.id, ctx):
            name = func.id
            if name in ("set", "frozenset"):
                return frozenset({Tag.UNORDERED}) | self._union(
                    arg_nodes, ctx, visiting
                )
            if name in _ORDER_ABSORBING_BUILTINS:
                inner = self._union(arg_nodes, ctx, visiting)
                return (inner - {Tag.UNORDERED}) or frozenset({Tag.CONST})
            if name == "open":
                return frozenset({Tag.FILE_HANDLE})
            if name in _TRANSPARENT_BUILTINS:
                return self._union(arg_nodes, ctx, visiting)

        qual = self.graph.resolve_call(ctx.module, node)
        if qual is None and (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and ctx.cls is not None
        ):
            qual = f"{ctx.module.name}.{ctx.cls}.{func.attr}"
        if qual is not None:
            known = _SOURCE_TABLE.get(qual)
            if known is not None:
                return known
            resolved = self.graph.resolve_function(qual)
            if resolved is not None:
                return self._summarize(
                    qual, resolved, node, ctx, visiting
                )
        # Unordered-producing methods (set algebra, dir listings) and
        # method calls on unordered receivers keep the hazard.
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, ctx, visiting)
            if func.attr in _UNORDERED_METHODS and (
                Tag.UNORDERED in receiver or Tag.OPAQUE in receiver
            ):
                return frozenset({Tag.UNORDERED})
            if func.attr in ("copy", "pop"):
                return receiver
        # Unknown callee: hazards ride through, provenance does not.
        passed = self._union(arg_nodes, ctx, visiting) & _STICKY
        return frozenset({Tag.OPAQUE}) | passed

    @staticmethod
    def _is_bound(name: str, ctx: Context) -> bool:
        return (
            name in ctx.env
            or name in ctx.params
            or name in ctx.local_funcs
            or name in ctx.module.imports
        )

    def _summarize(
        self,
        qual: str,
        resolved: Tuple[ModuleInfo, ast.FunctionDef],
        call: ast.Call,
        ctx: Context,
        visiting: FrozenSet[str],
    ) -> FrozenSet[Tag]:
        """Origins of ``qual``'s return value for this call's arguments."""
        owner, func = resolved
        if qual in self._in_progress or ctx.depth >= self.MAX_DEPTH:
            return frozenset({Tag.OPAQUE})
        param_tags = self._map_arguments(func, call, ctx, visiting)
        key = (qual, frozenset(param_tags.items()))
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        self._in_progress.add(qual)
        try:
            cls = qual.rsplit(".", 2)[-2] if self._is_method(owner, qual) else None
            callee_ctx = self.function_context(
                owner,
                func,
                cls=cls,
                param_tags=param_tags,
                depth=ctx.depth + 1,
            )
            tags: Set[Tag] = set()
            for ret in self._return_exprs(func):
                tags |= self._eval(ret, callee_ctx, frozenset())
            result = frozenset(tags) if tags else frozenset({Tag.OPAQUE})
        finally:
            self._in_progress.discard(qual)
        self._summaries[key] = result
        return result

    @staticmethod
    def _is_method(owner: ModuleInfo, qual: str) -> bool:
        local = qual[len(owner.name) + 1 :] if owner.name else qual
        return "." in local

    def _map_arguments(
        self,
        func: ast.FunctionDef,
        call: ast.Call,
        ctx: Context,
        visiting: FrozenSet[str],
    ) -> Dict[str, FrozenSet[Tag]]:
        args = func.args
        names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        mapped: Dict[str, FrozenSet[Tag]] = {}
        for name, value in zip(names, call.args):
            mapped[name] = self._eval(value, ctx, visiting)
        kw_names = set(names) | {a.arg for a in args.kwonlyargs}
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in kw_names:
                mapped[keyword.arg] = self._eval(keyword.value, ctx, visiting)
        return mapped

    @staticmethod
    def _return_exprs(func: ast.FunctionDef) -> List[ast.expr]:
        """Return expressions of ``func`` (its own, not nested defs')."""
        returns: List[ast.expr] = []

        def walk(statements: List[ast.stmt]) -> None:
            for stmt in statements:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    returns.append(stmt.value)
                for attr in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, attr, None)
                    if isinstance(inner, list):
                        walk(inner)
                for handler in getattr(stmt, "handlers", []):
                    walk(handler.body)

        walk(func.body)
        return returns
