"""File discovery, pragma suppression and reporting for ``repro-lint``.

Suppression pragma
------------------

A finding can be silenced with a comment naming its code::

    footprint = npages * 4096  # repro-lint: disable=RL001  <why it is ok>

* An **inline** pragma (comment on a line that also has code) silences
  the listed codes for findings anchored on that line only.
* A **stand-alone** pragma (a line that is nothing but the comment)
  silences the listed codes for the whole file — this is how a module
  opts out of a structural rule such as RL005.
* ``disable=all`` silences every rule.

Directories named ``fixtures`` (plus caches and VCS internals) are
skipped when a directory is walked, so lint-rule test fixtures do not
trip CI; linting a fixture *explicitly by path* still works, which is
exactly how the rule tests drive it.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.errors import LintError
from repro.lint.findings import PARSE_ERROR_CODE, RULES, Finding, LintRule

# Importing the rules module populates the registry.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)

__all__ = ["lint_file", "lint_paths", "iter_python_files", "render_text", "render_json"]

#: Directory names never descended into when walking a tree.
SKIP_DIRS = {"fixtures", "__pycache__", ".git", ".venv", "build", "dist", ".hypothesis"}

# The code list stops at the first token that is not a code or comma,
# so a trailing justification ("disable=RL001 <why>") parses cleanly.
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)"
)


def _pragma_codes(comment: str) -> Set[str]:
    """Codes listed in one pragma match (upper-cased, ``ALL`` possible)."""
    return {code.strip().upper() for code in comment.split(",") if code.strip()}


def _suppressions(source: str) -> "tuple[Dict[int, Set[str]], Set[str]]":
    """Scan ``source`` for pragmas.

    Returns ``(per_line, file_wide)``: codes disabled on specific
    (1-based) lines, and codes disabled for the whole file.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        codes = _pragma_codes(match.group(1))
        if line.lstrip().startswith("#"):
            file_wide |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


def _is_suppressed(
    finding: Finding, per_line: Dict[int, Set[str]], file_wide: Set[str]
) -> bool:
    for codes in (file_wide, per_line.get(finding.line, ())):
        if finding.code in codes or "ALL" in codes:
            return True
    return False


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield the ``.py`` files named by ``paths``, in sorted order.

    Directories are walked recursively, skipping :data:`SKIP_DIRS`;
    explicit file arguments are yielded even when a walk would have
    skipped them.
    """
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.relative_to(path).parts[:-1]):
                    yield sub
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")


def _select_rules(select: Optional[Iterable[str]]) -> List[Type[LintRule]]:
    if select is None:
        return [RULES[code] for code in sorted(RULES)]
    chosen = []
    for code in select:
        code = code.upper()
        if code not in RULES:
            raise LintError(
                f"unknown rule {code!r}; known rules: {', '.join(sorted(RULES))}"
            )
        chosen.append(RULES[code])
    return chosen


def lint_file(
    path: Path, *, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one file; return its (unsuppressed) findings, sorted."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    per_line, file_wide = _suppressions(source)
    findings: List[Finding] = []
    for rule_cls in _select_rules(select):
        if not rule_cls.applies_to(path):
            continue
        findings.extend(rule_cls(path).run(tree))
    return sorted(
        f for f in findings if not _is_suppressed(f, per_line, file_wide)
    )


def lint_paths(
    paths: Sequence[str], *, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every Python file under ``paths``; return all findings."""
    findings: List[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        findings.extend(lint_file(path, select=select))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [str(f) for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order)."""
    import json

    return json.dumps(
        {"findings": [f.to_dict() for f in findings], "count": len(findings)},
        indent=2,
    )
