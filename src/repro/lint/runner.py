"""File discovery, pragma suppression and reporting for ``repro-lint``.

Suppression pragma
------------------

A finding can be silenced with a comment naming its code::

    footprint = npages * 4096  # repro-lint: disable=RL001  <why it is ok>

* An **inline** pragma (comment on a line that also has code) silences
  the listed codes for findings anchored on that line only.
* A **stand-alone** pragma (a line that is nothing but the comment)
  silences the listed codes for the whole file — this is how a module
  opts out of a structural rule such as RL005.
* ``disable=all`` silences every rule.

Pragmas apply to the per-file rules (RL001–RL010) and the deep
whole-program rules (RL101–RL104) alike: a deep finding is anchored to
a file and line like any other, and that file's pragmas govern it.

One invocation, one parse
-------------------------

All passes share one :class:`~repro.lint.graph.ASTCache`: the per-file
rules and the ``--deep`` program graph read every file through it, so
each file is parsed exactly once per invocation no matter how many
rules inspect it.  :class:`LintReport` carries the wall-clock cost and
file/parse counts so ``--format json`` output shows what a pass spent.

Directories named ``fixtures`` (plus caches and VCS internals) are
skipped when a directory is walked, so lint-rule test fixtures do not
trip CI; linting a fixture *explicitly by path* still works, which is
exactly how the rule tests drive it.
"""

from __future__ import annotations

import ast
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import LintError
from repro.lint.findings import PARSE_ERROR_CODE, RULES, Finding, LintRule
from repro.lint.graph import ASTCache

# Importing the rule modules populates the registries.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)
from repro.lint.deep import DEEP_RULES, run_deep_rules

__all__ = [
    "LintReport",
    "lint_file",
    "lint_paths",
    "run_lint",
    "iter_python_files",
    "changed_files",
    "render_text",
    "render_json",
]

#: Directory names never descended into when walking a tree.
SKIP_DIRS = {"fixtures", "__pycache__", ".git", ".venv", "build", "dist", ".hypothesis"}

# The code list stops at the first token that is not a code or comma,
# so a trailing justification ("disable=RL001 <why>") parses cleanly.
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)"
)


def _pragma_codes(comment: str) -> Set[str]:
    """Codes listed in one pragma match (upper-cased, ``ALL`` possible)."""
    return {code.strip().upper() for code in comment.split(",") if code.strip()}


def _suppressions(source: str) -> "tuple[Dict[int, Set[str]], Set[str]]":
    """Scan ``source`` for pragmas.

    Returns ``(per_line, file_wide)``: codes disabled on specific
    (1-based) lines, and codes disabled for the whole file.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        codes = _pragma_codes(match.group(1))
        if line.lstrip().startswith("#"):
            file_wide |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


def _is_suppressed(
    finding: Finding, per_line: Dict[int, Set[str]], file_wide: Set[str]
) -> bool:
    for codes in (file_wide, per_line.get(finding.line, ())):
        if finding.code in codes or "ALL" in codes:
            return True
    return False


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield the ``.py`` files named by ``paths``, in sorted order.

    Directories are walked recursively, skipping :data:`SKIP_DIRS`;
    explicit file arguments are yielded even when a walk would have
    skipped them.
    """
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.relative_to(path).parts[:-1]):
                    yield sub
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")


def _split_selection(
    select: Optional[Iterable[str]],
    ignore: Optional[Iterable[str]] = None,
    *,
    deep: bool = False,
) -> Tuple[List[Type[LintRule]], List[str]]:
    """Resolve ``--select``/``--ignore`` over both rule registries.

    Returns the per-file rule classes to run and the deep rule *codes*
    to run.  Selecting an RL1xx code explicitly enables that deep rule
    even without ``--deep``; ``deep=True`` enables all of them.  An
    unknown code in either list raises :class:`LintError`.
    """
    known = set(RULES) | set(DEEP_RULES)

    def check(codes: Iterable[str]) -> List[str]:
        upper = [code.upper() for code in codes]
        for code in upper:
            if code not in known:
                raise LintError(
                    f"unknown rule {code!r}; known rules: "
                    f"{', '.join(sorted(known))}"
                )
        return upper

    if select is None:
        file_codes = sorted(RULES)
        deep_codes = sorted(DEEP_RULES) if deep else []
    else:
        chosen = check(select)
        file_codes = [code for code in chosen if code in RULES]
        deep_codes = [code for code in chosen if code in DEEP_RULES]
        if deep and not deep_codes:
            deep_codes = sorted(DEEP_RULES)
    ignored = set(check(ignore)) if ignore is not None else set()
    file_codes = [code for code in file_codes if code not in ignored]
    deep_codes = [code for code in deep_codes if code not in ignored]
    return [RULES[code] for code in file_codes], deep_codes


def _apply_suppressions(
    findings: Iterable[Finding], cache: ASTCache
) -> List[Finding]:
    """Drop findings silenced by their file's pragmas."""
    by_path: Dict[str, Tuple[Dict[int, Set[str]], Set[str]]] = {}
    kept: List[Finding] = []
    for finding in findings:
        marks = by_path.get(finding.path)
        if marks is None:
            try:
                source = cache.source(Path(finding.path))
            except LintError:
                source = ""
            marks = by_path[finding.path] = _suppressions(source)
        if not _is_suppressed(finding, *marks):
            kept.append(finding)
    return kept


def lint_file(
    path: Path,
    *,
    select: Optional[Iterable[str]] = None,
    cache: Optional[ASTCache] = None,
) -> List[Finding]:
    """Run the per-file rules on one file; return unsuppressed findings."""
    cache = cache if cache is not None else ASTCache()
    rule_classes, _ = _split_selection(select)
    return _lint_one(path, rule_classes, cache)


def _lint_one(
    path: Path, rule_classes: Sequence[Type[LintRule]], cache: ASTCache
) -> List[Finding]:
    source, tree, error = cache.load(path)
    if error is not None or tree is None:
        exc = error
        return [
            Finding(
                path=str(path),
                line=(exc.lineno or 1) if exc else 1,
                col=((exc.offset or 1) - 1) if exc else 0,
                code=PARSE_ERROR_CODE,
                message=(
                    f"file does not parse: {exc.msg}" if exc
                    else "file does not parse"
                ),
            )
        ]
    per_line, file_wide = _suppressions(source)
    findings: List[Finding] = []
    for rule_cls in rule_classes:
        if not rule_cls.applies_to(path):
            continue
        findings.extend(rule_cls(path).run(tree))
    return sorted(
        f for f in findings if not _is_suppressed(f, per_line, file_wide)
    )


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    cache: Optional[ASTCache] = None,
) -> List[Finding]:
    """Run the per-file rules under ``paths``; return all findings."""
    cache = cache if cache is not None else ASTCache()
    rule_classes, _ = _split_selection(select)
    findings: List[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        findings.extend(_lint_one(path, rule_classes, cache))
    return findings


@dataclass
class LintReport:
    """Everything one full lint invocation produced and cost."""

    findings: List[Finding]
    #: Files inspected (per-file pass; the deep graph sees the same set).
    files: int = 0
    #: Files actually parsed — equals ``files`` when the cache is cold,
    #: and stays there even with ``--deep`` (the point of sharing it).
    parsed: int = 0
    #: Wall-clock cost of the whole pass, in seconds (operator-facing
    #: only; never reaches a manifest).
    elapsed_s: float = 0.0
    deep: bool = False
    #: Findings silenced by the baseline file.
    baselined: int = 0
    #: Baseline entries that matched nothing (fixed findings).
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    #: Files the ``--changed`` filter restricted reporting to, or None.
    changed_only: Optional[int] = None


def changed_files(
    ref: str = "origin/main", *, cwd: Optional[Path] = None
) -> Set[Path]:
    """Files changed vs. ``ref``: committed, staged, unstaged, untracked.

    Resolved against the repository's top level so the answer is
    independent of the directory the linter was launched from.  Raises
    :class:`LintError` when git or the ref is unavailable.
    """
    base = Path(cwd) if cwd is not None else Path.cwd()

    def git(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args],
            cwd=base,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
        if proc.returncode != 0:
            raise LintError(
                f"git {' '.join(args)} failed: {proc.stderr.strip() or 'n/a'}"
            )
        return proc.stdout

    toplevel = Path(git("rev-parse", "--show-toplevel").strip())
    changed = git("diff", "--name-only", "--diff-filter=d", ref)
    untracked = git("ls-files", "--others", "--exclude-standard")
    paths: Set[Path] = set()
    for line in (changed + untracked).splitlines():
        line = line.strip()
        if line:
            paths.add((toplevel / line).resolve())
    return paths


def _filter_changed(
    findings: Sequence[Finding], changed: Set[Path]
) -> List[Finding]:
    return [
        f for f in findings if Path(f.path).resolve() in changed
    ]


def run_lint(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    deep: bool = False,
    changed_ref: Optional[str] = None,
    baseline: Optional[Sequence[Dict[str, str]]] = None,
    cache: Optional[ASTCache] = None,
) -> LintReport:
    """One full lint invocation: per-file pass, deep pass, filters.

    The per-file rules run on every file under ``paths``; with ``deep``
    (or any RL1xx code in ``select``) the whole-program graph is built
    over the *same* files through the *same* AST cache and the deep
    rules run after.  ``changed_ref`` restricts **reporting** to files
    changed vs. that git ref — the deep rules still see the whole
    program, so a cross-module regression caused by a changed file but
    manifesting in an unchanged one is only reported when the changed
    file carries the flagged expression (findings follow the
    expression, which is where the fix goes).  ``baseline`` entries
    (see :mod:`repro.lint.baseline`) absorb known findings last, after
    suppression and the changed filter.
    """
    from repro.lint.baseline import apply_baseline

    started = time.perf_counter()
    cache = cache if cache is not None else ASTCache()
    rule_classes, deep_codes = _split_selection(select, ignore, deep=deep)
    files = list(iter_python_files([Path(p) for p in paths]))
    findings: List[Finding] = []
    for path in files:
        findings.extend(_lint_one(path, rule_classes, cache))
    if deep_codes:
        deep_findings = run_deep_rules(
            [p for p in files], codes=deep_codes, cache=cache
        )
        findings.extend(_apply_suppressions(deep_findings, cache))
    findings = sorted(set(findings))
    report = LintReport(
        findings=findings,
        files=len(files),
        deep=bool(deep_codes),
    )
    if changed_ref is not None:
        changed = changed_files(changed_ref)
        report.changed_only = len(changed)
        report.findings = _filter_changed(report.findings, changed)
    if baseline is not None:
        matched = apply_baseline(report.findings, baseline)
        report.findings = matched.findings
        report.baselined = matched.suppressed
        report.stale_baseline = matched.stale
    report.parsed = cache.parse_count
    report.elapsed_s = time.perf_counter() - started
    return report


def render_text(
    findings: Sequence[Finding], report: Optional[LintReport] = None
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [str(f) for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    summary = f"{len(findings)} {noun}"
    if report is not None:
        extras = [f"{report.files} file(s)", f"{report.elapsed_s:.2f}s"]
        if report.baselined:
            extras.append(f"{report.baselined} baselined")
        if report.stale_baseline:
            extras.append(
                f"{len(report.stale_baseline)} stale baseline entr"
                f"{'y' if len(report.stale_baseline) == 1 else 'ies'}"
            )
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], report: Optional[LintReport] = None
) -> str:
    """Machine-readable report (stable key order).

    With a :class:`LintReport`, the document also carries the pass's
    own runtime and parse economy (``files``, ``parsed``,
    ``elapsed_s``) plus baseline accounting — the measurable face of
    the shared-AST-cache work.
    """
    import json

    document: Dict[str, object] = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    if report is not None:
        document["timing"] = {
            "elapsed_s": round(report.elapsed_s, 6),
            "files": report.files,
            "parsed": report.parsed,
        }
        document["deep"] = report.deep
        if report.baselined or report.stale_baseline:
            document["baseline"] = {
                "suppressed": report.baselined,
                "stale": report.stale_baseline,
            }
        if report.changed_only is not None:
            document["changed_files"] = report.changed_only
    return json.dumps(document, indent=2)
