"""SARIF 2.1.0 export so findings land in GitHub code scanning.

One ``run`` per invocation: the tool component carries the full rule
catalogue (per-file and deep rules alike, so code-scanning UIs can
show rule help even for codes with no findings this run), each finding
becomes a ``result`` with a physical location, and ``ruleIndex`` links
the two.  Paths are emitted POSIX-style and relative when possible,
which is what ``github/codeql-action/upload-sarif`` expects.

The emitted document is deliberately minimal — only properties the
2.1.0 schema marks required plus the location/level fields consumers
actually read — and is covered by a golden-structure test
(``tests/lint/test_sarif.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.findings import Finding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_document", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Parse failures are hard errors; rule findings are warnings, which
#: is what keeps code scanning annotations from blocking merges twice
#: (the lint exit code already gates CI).
_ERROR_CODES = {"RL000"}


def _artifact_uri(path: str) -> str:
    """POSIX, preferably repo-relative, URI for one finding path."""
    p = Path(path)
    try:
        p = p.relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def sarif_document(
    findings: Sequence[Finding],
    *,
    catalog: Sequence[Dict[str, str]],
    tool_version: str,
) -> Dict[str, object]:
    """The SARIF 2.1.0 document for one lint run, as a plain dict."""
    rule_index = {entry["code"]: i for i, entry in enumerate(catalog)}
    rules: List[Dict[str, object]] = [
        {
            "id": entry["code"],
            "name": entry["name"],
            "shortDescription": {"text": entry["description"]},
        }
        for entry in catalog
    ]
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.code,
            "level": "error" if finding.code in _ERROR_CODES else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/"  # repo-local tool
                        ),
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///" + Path.cwd().as_posix().lstrip("/") + "/"}
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    *,
    catalog: Sequence[Dict[str, str]],
    tool_version: str,
) -> str:
    """Stable JSON serialization of :func:`sarif_document`."""
    return json.dumps(
        sarif_document(
            findings, catalog=catalog, tool_version=tool_version
        ),
        indent=2,
        sort_keys=True,
    )
