"""repro-lint — repo-specific static analysis for the reproduction.

Five AST rules encode the invariants every figure in the paper rests
on (page/cycle unit discipline, seeded determinism, frozen configs,
integral accounting, explicit API surfaces); see
:mod:`repro.lint.rules` for the catalogue and
:mod:`repro.lint.runner` for suppression-pragma semantics.

Run it as ``python -m repro lint [paths...]``.
"""

from repro.lint.findings import Finding, LintRule, RULES, register_rule, rule_catalog
from repro.lint.runner import (
    iter_python_files,
    lint_file,
    lint_paths,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "LintRule",
    "RULES",
    "register_rule",
    "rule_catalog",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
]
