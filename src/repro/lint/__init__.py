"""repro-lint — repo-specific static analysis for the reproduction.

Two layers of rules encode the invariants every figure in the paper
rests on:

* the **per-file** rules RL001–RL010 (page/cycle unit discipline,
  seeded determinism, frozen configs, integral accounting, explicit
  API surfaces) — :mod:`repro.lint.rules`;
* the **whole-program** rules RL101–RL104 (cross-module seed
  provenance, pickle-safety of shipped values, wall-clock taint into
  manifests, unordered-iteration hazards), which build an import/call
  graph over the whole tree and run a taint analysis across function
  and module boundaries — :mod:`repro.lint.graph`,
  :mod:`repro.lint.taint`, :mod:`repro.lint.deep`.

Both layers share one :class:`~repro.lint.graph.ASTCache` per
invocation, so every file is parsed exactly once.  Findings can be
silenced by pragma (:mod:`repro.lint.runner`), absorbed by a committed
baseline (:mod:`repro.lint.baseline`), or exported as SARIF 2.1.0 for
code-scanning UIs (:mod:`repro.lint.sarif`).

Run it as ``python -m repro lint [--deep] [paths...]``.
"""

from repro.lint.findings import Finding, LintRule, RULES, register_rule, rule_catalog
from repro.lint.graph import ASTCache, ModuleInfo, ProgramGraph
from repro.lint.deep import DEEP_RULES, deep_rule_catalog, run_deep_rules
from repro.lint.baseline import (
    BASELINE_SCHEMA,
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.sarif import render_sarif, sarif_document
from repro.lint.runner import (
    LintReport,
    changed_files,
    iter_python_files,
    lint_file,
    lint_paths,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Finding",
    "LintRule",
    "RULES",
    "DEEP_RULES",
    "register_rule",
    "rule_catalog",
    "deep_rule_catalog",
    "run_deep_rules",
    "ASTCache",
    "ModuleInfo",
    "ProgramGraph",
    "BASELINE_SCHEMA",
    "BaselineResult",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "render_sarif",
    "sarif_document",
    "LintReport",
    "changed_files",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "run_lint",
]
