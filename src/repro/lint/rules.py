"""The repo-specific lint rules, RL001–RL012.

Each rule mechanizes one invariant the reproduction depends on:

* **RL001** — all page/byte arithmetic goes through :mod:`repro.units`.
  A stray ``* 4096`` or ``>> 12`` silently re-encodes the 4 KiB page
  size, and a magic ``96 MiB``/``128 MiB`` literal re-encodes the
  paper's EPC geometry; both drift independently of ``units.py``.
* **RL002** — no unseeded randomness.  Every benchmark figure is a
  deterministic function of ``(workload, config, seed)``; one call to
  the global ``random`` module breaks replay for the whole run.
* **RL003** — frozen configs stay frozen.  ``object.__setattr__`` on a
  frozen dataclass outside ``__post_init__`` bypasses the immutability
  the scaling/sweep machinery relies on (configs are shared, not
  copied).
* **RL004** — page counts and cycle counters are integers.  Mixing a
  float literal into ``*_pages``/``*_cycles``/``*Counter`` names
  introduces rounding drift into exactly the accounting the engine
  cross-checks.
* **RL005** — public modules declare ``__all__`` so the API surface is
  explicit and ``from m import *`` cannot leak helpers.
* **RL006** — no direct ``print()`` in library code.  Output belongs to
  the CLI and the report renderer; everything else surfaces state
  through :mod:`repro.obs` (metrics, traces, manifests) so it stays
  machine-readable and silent by default.
* **RL007** — process-level parallelism stays in ``repro.sim.parallel``.
  The determinism guarantee (``jobs=N`` reproduces ``jobs=1`` byte for
  byte) is only auditable while pool sizing, submission order and
  failure wrapping live in one module; a stray ``ProcessPoolExecutor``
  or ``multiprocessing`` use elsewhere forks the simulator's state
  behind the runner's back.
* **RL008** — real-time delays stay in ``repro.robust``.  A bare
  ``time.sleep`` elsewhere is either an accidental wall-clock
  dependency in a virtual-cycle simulator or an unauditable wait; the
  resilience layer's :func:`repro.robust.sleep` is the one sanctioned
  delay primitive (retry backoff, injected hangs), so every real wait
  in the tree is greppable in one package.
* **RL009** — execution-layer spans go through
  :mod:`repro.obs.exec_telemetry`.  An ad-hoc ``{"kind": ...,
  "job": ...}`` event dict built inside ``repro.robust`` or the job
  runner bypasses the ``ExecTelemetry`` collector, so the span never
  reaches the manifest block, the fleet report or the Chrome export —
  and its shape drifts from the ``repro.exec-telemetry/1`` schema the
  consumers validate.
* **RL010** — paging-ledger emission stays in the driver.  The
  ``ledger_*`` hooks of :class:`repro.obs.paging.PagingProfiler` are
  the per-page decision ledger's only write path; a call from any
  other library module would record paging decisions the simulation
  never made (or double-count ones it did), silently breaking the
  reconciliation identities ``validate_paging_profile`` enforces.
* **RL011** — bulk RunStats retirement stays in the engine and the
  driver.  Incrementing a run counter (``accesses``, ``epc_hits``,
  ``preload_hits``, ``sip_checks``, ``sip_check_hits``) by anything
  other than the literal ``1`` retires many simulated events in one
  step — which is only sound under the batched engine's event-horizon
  invariant (no background state transition strictly inside a retired
  run).  Per-event ``+= 1`` bookkeeping is fine anywhere; a bulk
  mutation in any other module silently bypasses the per-event hooks
  and breaks the byte-identity contract between the scalar and
  batched engines.
* **RL012** — fleet time-series emission stays in the fleet event
  loop.  The ``series_*`` hooks of
  :class:`repro.obs.fleet_telemetry.FleetTelemetry` are fed
  exclusively by ``simulate_fleet`` (the sampler is passive — it
  observes the loop, never drives it); a call from any other library
  module would inject windows, lifecycle edges or rebalance records
  the fleet never produced, breaking the exact reconciliation of the
  ``repro.fleet-timeseries/1`` block against the fleet manifest's QoS
  aggregates that ``validate_fleet_timeseries`` enforces.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Set

from repro.lint.findings import LintRule, register_rule
from repro import units

__all__ = [
    "RawPageArithmetic",
    "UnseededRandomness",
    "FrozenConfigMutation",
    "FloatPageArithmetic",
    "MissingDunderAll",
    "DirectPrint",
    "StrayMultiprocessing",
    "BareSleep",
    "AdHocExecSpan",
    "StrayLedgerEmission",
    "StrayBulkRetirement",
    "StraySeriesEmission",
]

#: Byte values that re-encode the platform's EPC geometry.
_EPC_GEOMETRY_BYTES = {units.EPC_USABLE_BYTES, units.EPC_TOTAL_BYTES}

_MULTIPLICATIVE_OPS = (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)
_SHIFT_OPS = (ast.LShift, ast.RShift)


def _int_const(node: ast.AST) -> Optional[int]:
    """The value of an int literal node (bools excluded), else None."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


def _is_float_literal(node: ast.AST) -> bool:
    """True for a float literal, including a negated one like ``-0.5``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


def _fold_int(node: ast.AST) -> Optional[int]:
    """Constant-fold an int-literal-only expression tree, else None.

    Handles the shapes magic sizes are written in (``96 * 1024 * 1024``,
    ``2 ** 20 * 128``); bails out on anything non-literal and on
    absurdly large shifts/powers.
    """
    value = _int_const(node)
    if value is not None:
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _fold_int(node.operand)
        return -inner if inner is not None else None
    if not isinstance(node, ast.BinOp):
        return None
    left = _fold_int(node.left)
    right = _fold_int(node.right)
    if left is None or right is None:
        return None
    op = node.op
    try:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right if right else None
        if isinstance(op, ast.LShift):
            return left << right if 0 <= right <= 64 else None
        if isinstance(op, ast.Pow):
            return left**right if 0 <= right <= 64 else None
    except (OverflowError, ValueError):
        return None
    return None


@register_rule
class RawPageArithmetic(LintRule):
    """RL001: raw 4 KiB page arithmetic outside ``repro/units.py``."""

    code = "RL001"
    name = "raw-page-arithmetic"
    description = (
        "page-size arithmetic (* 4096, >> 12, // 4096) or magic EPC-size "
        "literals outside repro.units"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # units.py is the one module allowed to spell these constants.
        parts = path.parts
        return not (path.name == "units.py" and "repro" in parts)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, _MULTIPLICATIVE_OPS):
            if units.PAGE_SIZE in (_int_const(node.left), _int_const(node.right)):
                self.report(
                    node,
                    "raw 4096-byte page arithmetic; use repro.units "
                    "(PAGE_SIZE, pages_of, bytes_of)",
                )
        elif isinstance(node.op, _SHIFT_OPS):
            if _int_const(node.right) == units.PAGE_SHIFT:
                self.report(
                    node,
                    "raw 12-bit page shift; use repro.units "
                    "(PAGE_SHIFT, page_number, bytes_of)",
                )
        folded = _fold_int(node)
        if folded in _EPC_GEOMETRY_BYTES:
            mib = folded // units.MIB
            self.report(
                node,
                f"magic {mib} MiB EPC-size expression; use "
                "repro.units.EPC_USABLE_BYTES / EPC_TOTAL_BYTES",
            )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if _int_const(node) in _EPC_GEOMETRY_BYTES:
            mib = node.value // units.MIB
            self.report(
                node,
                f"magic {mib} MiB EPC-size literal; use "
                "repro.units.EPC_USABLE_BYTES / EPC_TOTAL_BYTES",
            )


#: ``random``-module functions that draw from the *global* unseeded RNG.
_GLOBAL_RNG_FUNCS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


@register_rule
class UnseededRandomness(LintRule):
    """RL002: randomness not derived from an explicit seed."""

    code = "RL002"
    name = "unseeded-randomness"
    description = (
        "use of the global random module, Random() without a seed, or "
        "SystemRandom — determinism is load-bearing for every figure"
    )

    def __init__(self, path: Path) -> None:
        super().__init__(path)
        self._from_random: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._from_random.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _check_random_callable(self, node: ast.Call, func_name: str) -> None:
        if func_name == "Random":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "Random() constructed without an explicit seed; pass "
                    "a seed so runs replay deterministically",
                )
        elif func_name == "SystemRandom":
            self.report(
                node,
                "SystemRandom is inherently non-deterministic; use a "
                "seeded random.Random instead",
            )
        elif func_name == "seed":
            if not node.args:
                self.report(
                    node,
                    "random.seed() without an argument seeds from the OS; "
                    "pass an explicit seed",
                )
        elif func_name in _GLOBAL_RNG_FUNCS:
            self.report(
                node,
                f"random.{func_name}() draws from the global unseeded RNG; "
                "use a seeded random.Random instance",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            self._check_random_callable(node, func.attr)
        elif isinstance(func, ast.Name) and func.id in self._from_random:
            self._check_random_callable(node, func.id)
        self.generic_visit(node)


@register_rule
class FrozenConfigMutation(LintRule):
    """RL003: ``object.__setattr__`` outside ``__post_init__``."""

    code = "RL003"
    name = "frozen-config-mutation"
    description = (
        "object.__setattr__ on (frozen) objects outside __post_init__ — "
        "configs are shared between runs, not copied"
    )

    def __init__(self, path: Path) -> None:
        super().__init__(path)
        self._func_stack: List[str] = []

    def _visit_func(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and "__post_init__" not in self._func_stack
        ):
            self.report(
                node,
                "object.__setattr__ outside __post_init__ mutates a frozen "
                "dataclass; use dataclasses.replace / .replace() instead",
            )
        self.generic_visit(node)


def _counter_name(node: ast.AST) -> Optional[str]:
    """The identifier of a page/cycle-denominated name, else None."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    if (
        ident.endswith("_pages")
        or ident.endswith("_cycles")
        or ident.lower().endswith("counter")
    ):
        return ident
    return None


@register_rule
class FloatPageArithmetic(LintRule):
    """RL004: float literals mixed into page/cycle-counter names."""

    code = "RL004"
    name = "float-page-arithmetic"
    description = (
        "float literal combined with a *_pages/*_cycles/*Counter name — "
        "page and cycle accounting must stay integral"
    )

    def _check_pair(self, parent: ast.AST, a: ast.AST, b: ast.AST) -> bool:
        for named, lit in ((a, b), (b, a)):
            ident = _counter_name(named)
            if ident is not None and _is_float_literal(lit):
                self.report(
                    parent,
                    f"float literal mixed with integral quantity {ident!r}; "
                    "keep page/cycle accounting in ints (round explicitly "
                    "at the edge if needed)",
                )
                return True
        return False

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_pair(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for a, b in zip(operands, operands[1:]):
            if self._check_pair(node, a, b):
                break
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if self._check_pair(node, target, node.value):
                break
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_pair(node, node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_pair(node, node.target, node.value)
        self.generic_visit(node)


@register_rule
class MissingDunderAll(LintRule):
    """RL005: public module without an ``__all__`` declaration."""

    code = "RL005"
    name = "missing-dunder-all"
    description = (
        "public package module lacking __all__ — the API surface must be "
        "explicit"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        name = path.name
        if name.startswith("_") or name.startswith("test_") or name == "conftest.py":
            return False
        # Only modules inside a package are importable API surface;
        # stand-alone scripts (tools/, examples/) are exempt.
        return (path.parent / "__init__.py").exists()

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return
        self.report(node, "public module does not declare __all__")


@register_rule
class DirectPrint(LintRule):
    """RL006: direct ``print()`` in library code."""

    code = "RL006"
    name = "direct-print"
    description = (
        "print() in library code — only the CLI and the report renderer "
        "write to stdout; use repro.obs for run-time visibility"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        if "repro" not in path.parts:
            return False
        if path.name == "cli.py":
            return False
        # The analysis report renderer is the other sanctioned writer.
        if path.name == "report.py" and path.parent.name == "analysis":
            return False
        return True

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            self.report(
                node,
                "direct print() in library code; return/log the data or "
                "surface it through repro.obs instead",
            )
        self.generic_visit(node)


#: Names from ``concurrent.futures`` that spawn worker processes.
_POOL_NAMES = {"ProcessPoolExecutor"}


@register_rule
class StrayMultiprocessing(LintRule):
    """RL007: process pools outside ``repro.sim.parallel``."""

    code = "RL007"
    name = "stray-multiprocessing"
    description = (
        "ProcessPoolExecutor / multiprocessing use outside "
        "repro.sim.parallel — parallel execution must go through the "
        "deterministic job runner"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # The runner itself is the single sanctioned home.
        parts = path.parts
        return not (
            path.name == "parallel.py" and len(parts) >= 2 and parts[-2] == "sim"
        )

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} outside repro.sim.parallel; use "
            "repro.sim.parallel.run_jobs (or the drivers' policy= "
            "parameter) so parallel runs stay deterministic and failures "
            "stay typed",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "multiprocessing":
                self._flag(node, f"import of {alias.name!r}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        if root == "multiprocessing":
            self._flag(node, f"import from {module!r}")
        elif root == "concurrent":
            for alias in node.names:
                if alias.name in _POOL_NAMES:
                    self._flag(node, f"import of {alias.name!r}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _POOL_NAMES:
            self._flag(node, f"use of {node.attr!r}")
        self.generic_visit(node)


@register_rule
class BareSleep(LintRule):
    """RL008: bare ``time.sleep`` outside ``repro.robust``."""

    code = "RL008"
    name = "bare-sleep"
    description = (
        "time.sleep outside repro.robust — the simulator is virtual-cycle "
        "deterministic; real waits (backoff, injected hangs) go through "
        "repro.robust.sleep so they stay auditable in one package"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # The resilience layer is the single sanctioned home for
        # wall-clock delays.
        parts = path.parts
        return not ("robust" in parts and "repro" in parts)

    def __init__(self, path: Path) -> None:
        super().__init__(path)
        self._sleep_aliases: Set[str] = set()

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} outside repro.robust; use repro.robust.sleep so "
            "every real-time wait in the tree stays auditable",
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    self._sleep_aliases.add(alias.asname or alias.name)
                    self._flag(node, "import of time.sleep")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self._flag(node, "time.sleep() call")
        elif isinstance(func, ast.Name) and func.id in self._sleep_aliases:
            self._flag(node, f"call of {func.id}() (imported from time)")
        self.generic_visit(node)


#: Key sets that mark a dict literal as a hand-rolled execution span.
_SPAN_MARKER_KEY = "kind"
_SPAN_CONTEXT_KEYS = {"job", "attempt"}


@register_rule
class AdHocExecSpan(LintRule):
    """RL009: hand-rolled execution-span dicts in the execution layer."""

    code = "RL009"
    name = "ad-hoc-exec-span"
    description = (
        "ad-hoc {'kind': ..., 'job'/'attempt': ...} event dict in "
        "repro.robust or the job runner — execution-layer spans must go "
        "through repro.obs.exec_telemetry (ExecTelemetry) so they reach "
        "the manifest block, fleet report and Chrome export"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # Only the execution layer is policed: the resilience package
        # and the deterministic job runner.  exec_telemetry itself (in
        # repro.obs) is the sanctioned producer of these shapes.
        parts = path.parts
        if "repro" not in parts:
            return False
        if "robust" in parts:
            return True
        return path.name == "parallel.py" and len(parts) >= 2 and parts[-2] == "sim"

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "ad-hoc execution-span dict; emit spans through the "
            "repro.obs.exec_telemetry API (ExecTelemetry.attempt_started "
            "and friends) so the schema stays uniform",
        )

    def visit_Dict(self, node: ast.Dict) -> None:
        keys = {
            key.value
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        if _SPAN_MARKER_KEY in keys and keys & _SPAN_CONTEXT_KEYS:
            self._flag(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "dict":
            keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
            if _SPAN_MARKER_KEY in keywords and keywords & _SPAN_CONTEXT_KEYS:
                self._flag(node)
        self.generic_visit(node)


@register_rule
class StrayLedgerEmission(LintRule):
    """RL010: paging-ledger writes outside the sanctioned emitters."""

    code = "RL010"
    name = "stray-paging-ledger"
    description = (
        "ledger_* call outside repro.obs.paging / repro.enclave.driver — "
        "the paging-decision ledger is fed exclusively by the driver's "
        "hot-path hooks; any other caller records decisions the "
        "simulation never made and breaks the profile's reconciliation "
        "identities"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # Only library code is policed; tests exercising the hooks
        # directly are fine.  The profiler itself and the driver are
        # the two sanctioned homes of ledger traffic.
        parts = path.parts
        if "repro" not in parts:
            return False
        if path.name == "paging.py" and len(parts) >= 2 and parts[-2] == "obs":
            return False
        if path.name == "driver.py" and len(parts) >= 2 and parts[-2] == "enclave":
            return False
        return True

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr.startswith("ledger_"):
            self.report(
                node,
                f"{func.attr}() outside the driver — paging-ledger "
                "emission is confined to repro.enclave.driver so the "
                "profile's totals reconcile with the run's RunStats",
            )
        self.generic_visit(node)


#: RunStats counters the batched engine retires in bulk.  A ``+=``
#: with any operand other than the literal ``1`` on one of these is a
#: bulk retirement, sound only under the event-horizon invariant.
_BULK_RUNSTATS_COUNTERS = {
    "accesses",
    "epc_hits",
    "preload_hits",
    "sip_checks",
    "sip_check_hits",
}


@register_rule
class StrayBulkRetirement(LintRule):
    """RL011: bulk RunStats counter mutation outside engine/driver."""

    code = "RL011"
    name = "stray-bulk-retirement"
    description = (
        "run counter incremented by more than one event outside "
        "repro.sim.engine / repro.enclave.driver — retiring many "
        "simulated events in one counter bump is only sound under the "
        "batched engine's event-horizon invariant; anywhere else it "
        "bypasses the per-event hooks and breaks the scalar/batched "
        "byte-identity contract"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # Only library code is policed; the two modules that own the
        # horizon invariant — the batched engine and the driver whose
        # retire_run it calls — are the sanctioned homes of bulk
        # counter retirement.
        parts = path.parts
        if "repro" not in parts:
            return False
        if path.name == "driver.py" and len(parts) >= 2 and parts[-2] == "enclave":
            return False
        if path.name == "engine.py" and len(parts) >= 2 and parts[-2] == "sim":
            return False
        return True

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if (
            isinstance(node.op, ast.Add)
            and isinstance(target, ast.Attribute)
            and target.attr in _BULK_RUNSTATS_COUNTERS
            and not (
                isinstance(node.value, ast.Constant)
                and type(node.value.value) is int
                and node.value.value == 1
            )
        ):
            self.report(
                node,
                f"bulk `{target.attr} +=` outside repro.sim.engine and "
                "repro.enclave.driver — run counters may only be "
                "retired in bulk under the batched engine's horizon "
                "invariant; per-event code increments by 1",
            )
        self.generic_visit(node)


@register_rule
class StraySeriesEmission(LintRule):
    """RL012: fleet-telemetry series writes outside the sanctioned emitters."""

    code = "RL012"
    name = "stray-series-emission"
    description = (
        "series_* call outside repro.sim.fleet / "
        "repro.obs.fleet_telemetry — the fleet time-series sampler is "
        "fed exclusively by simulate_fleet's event loop; any other "
        "caller injects windows the fleet never ran and breaks the "
        "block's reconciliation against the QoS aggregates"
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        # Only library code is policed; tests exercising the hooks
        # directly are fine.  The sampler itself and the fleet event
        # loop are the two sanctioned homes of series traffic.
        parts = path.parts
        if "repro" not in parts:
            return False
        if path.name == "fleet.py" and len(parts) >= 2 and parts[-2] == "sim":
            return False
        if (
            path.name == "fleet_telemetry.py"
            and len(parts) >= 2
            and parts[-2] == "obs"
        ):
            return False
        return True

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr.startswith("series_"):
            self.report(
                node,
                f"{func.attr}() outside simulate_fleet — fleet "
                "time-series emission is confined to repro.sim.fleet "
                "so the block's windows reconcile with the fleet's "
                "QoS aggregates",
            )
        self.generic_visit(node)
