"""Finding baselines: accept the past, fail the future.

A baseline file records the findings a tree is *known* to carry so a
newly introduced rule can gate CI immediately: baselined findings are
silenced, anything not in the file fails the build, and a baselined
finding that gets **fixed** leaves a stale entry behind (reported so
the file can be trimmed — entries are a debt register, not a dumping
ground; each carries a human justification).

Matching is deliberately line-number free: a finding is identified by
``(path, code, message)`` with multiset semantics, so reflowing a file
neither silences a new finding nor resurfaces an old one, while a
*second* identical finding in the same file correctly fails (only as
many findings are absorbed as the baseline holds entries for).

Schema (``repro.lint-baseline/1``)::

    {
      "schema": "repro.lint-baseline/1",
      "findings": [
        {"path": "src/repro/x.py", "code": "RL103",
         "message": "...", "justification": "why this one is accepted"}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import LintError
from repro.lint.findings import Finding

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineResult",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

#: Schema identifier carried by every baseline file.
BASELINE_SCHEMA = "repro.lint-baseline/1"

#: Placeholder written by ``--write-baseline``; CI should never merge
#: one — every accepted finding deserves a real sentence.
_TODO_JUSTIFICATION = "TODO: justify why this finding is accepted"

_Key = Tuple[str, str, str]


def _key(path: str, code: str, message: str) -> _Key:
    return (Path(path).as_posix(), code, message)


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of matching findings against a baseline."""

    #: Findings not absorbed by the baseline (these fail the build).
    findings: List[Finding]
    #: Number of findings the baseline silenced.
    suppressed: int
    #: Baseline entries that matched nothing — fixed findings whose
    #: entries should now be deleted from the file.
    stale: List[Dict[str, str]]


def load_baseline(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Load and schema-check one baseline file; return its entries."""
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {target} is not valid JSON: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("schema") != BASELINE_SCHEMA
    ):
        raise LintError(
            f"baseline {target} lacks schema {BASELINE_SCHEMA!r} "
            "(regenerate it with --write-baseline)"
        )
    entries = document.get("findings")
    if not isinstance(entries, list):
        raise LintError(f"baseline {target} has no findings list")
    for entry in entries:
        if not isinstance(entry, dict) or not {
            "path", "code", "message"
        } <= set(entry):
            raise LintError(
                f"baseline {target} entry {entry!r} lacks "
                "path/code/message"
            )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Dict[str, str]]
) -> BaselineResult:
    """Split findings into fresh vs. baselined; report stale entries."""
    budget: Counter = Counter(
        _key(entry["path"], entry["code"], entry["message"])
        for entry in entries
    )
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = _key(finding.path, finding.code, finding.message)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    stale: List[Dict[str, str]] = []
    for entry in entries:
        key = _key(entry["path"], entry["code"], entry["message"])
        if budget[key] > 0:
            budget[key] -= 1
            stale.append(entry)
    return BaselineResult(findings=kept, suppressed=suppressed, stale=stale)


def write_baseline(
    path: Union[str, Path], findings: Sequence[Finding]
) -> Path:
    """Write ``findings`` as a fresh baseline file; return its path.

    Entries are deduplicated into the multiset form, sorted, and given
    the TODO justification placeholder — the human committing the file
    replaces each with the actual reason the finding is accepted.
    """
    entries = [
        {
            "path": Path(finding.path).as_posix(),
            "code": finding.code,
            "message": finding.message,
            "justification": _TODO_JUSTIFICATION,
        }
        for finding in sorted(findings)
    ]
    document = {"schema": BASELINE_SCHEMA, "findings": entries}
    target = Path(path)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
